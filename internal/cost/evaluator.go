package cost

import (
	"encoding/binary"

	"repro/internal/bitset"
	"repro/internal/constraint"
)

// Evaluator memoizes per-constraint minimization results across repeated
// evaluations of similar assignments. The characteristic function F_I of a
// face constraint depends only on (code length, member codes, off codes,
// in sets); a pairwise code swap leaves most constraints' key unchanged, so
// annealing and swap-improvement loops hit the cache on all but the few
// constraints touching the swapped symbols.
type Evaluator struct {
	cs   *constraint.Set
	memo []map[string]faceCost
	// Hits and Misses expose cache behavior for the ablation bench.
	Hits, Misses int
}

type faceCost struct {
	cubes, literals int
	satisfied       bool
}

// NewEvaluator returns an evaluator for the given constraint set.
func NewEvaluator(cs *constraint.Set) *Evaluator {
	return &Evaluator{cs: cs, memo: make([]map[string]faceCost, len(cs.Faces))}
}

// Evaluate computes the Section-7 metrics with memoization.
func (e *Evaluator) Evaluate(a Assignment) Result {
	var r Result
	for fi := range e.cs.Faces {
		fc := e.face(fi, a)
		if !fc.satisfied {
			r.Violations++
		}
		r.Cubes += fc.cubes
		r.Literals += fc.literals
	}
	return r
}

// Of evaluates a single metric with memoization.
func (e *Evaluator) Of(m Metric, a Assignment) int {
	r := e.Evaluate(a)
	switch m {
	case Violations:
		return r.Violations
	case Cubes:
		return r.Cubes
	case Literals:
		return r.Literals
	default:
		panic("cost: unknown metric")
	}
}

func (e *Evaluator) face(fi int, a Assignment) faceCost {
	f := e.cs.Faces[fi]
	members := bitset.Intersect(f.Members, a.Subset)
	if members.Len() < 2 {
		return faceCost{satisfied: true}
	}
	key := e.key(f, members, a)
	if e.memo[fi] == nil {
		e.memo[fi] = make(map[string]faceCost)
	}
	if fc, ok := e.memo[fi][key]; ok {
		e.Hits++
		return fc
	}
	e.Misses++
	g := minimizeFace(f, members, a)
	fc := faceCost{
		cubes:     g.Size(),
		literals:  g.Literals(),
		satisfied: faceSatisfied(f, a),
	}
	e.memo[fi][key] = fc
	return fc
}

// key canonically serializes the on/off/dc code multisets of one face
// under the assignment. Codes are bucketed by role and sorted so
// role-preserving permutations of symbols hit the same entry.
func (e *Evaluator) key(f constraint.Face, members bitset.Set, a Assignment) string {
	var on, off, dc []uint64
	a.Subset.ForEach(func(s int) bool {
		c := uint64(a.Codes[s])
		switch {
		case members.Has(s):
			on = append(on, c)
		case f.DontCare.Has(s) || f.Members.Has(s):
			dc = append(dc, c)
		default:
			off = append(off, c)
		}
		return true
	})
	sortU64(on)
	sortU64(off)
	sortU64(dc)
	buf := make([]byte, 0, 8*(len(on)+len(off)+len(dc))+4)
	buf = append(buf, byte(a.Bits))
	for _, group := range [][]uint64{on, off, dc} {
		buf = append(buf, 0xFF)
		for _, c := range group {
			var tmp [8]byte
			binary.LittleEndian.PutUint64(tmp[:], c)
			buf = append(buf, tmp[:]...)
		}
	}
	return string(buf)
}

func sortU64(xs []uint64) {
	// Insertion sort: groups are small (tens of codes).
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
