package cost

import (
	"encoding/binary"

	"repro/internal/bitset"
	"repro/internal/constraint"
)

// Evaluator memoizes per-constraint minimization results across repeated
// evaluations of similar assignments. The characteristic function F_I of a
// face constraint depends only on (code length, member codes, off codes,
// in sets); a pairwise code swap leaves most constraints' key unchanged, so
// annealing and swap-improvement loops hit the cache on all but the few
// constraints touching the swapped symbols.
type Evaluator struct {
	cs   *constraint.Set
	memo []map[string]faceCost
	// Hits and Misses expose cache behavior for the ablation bench.
	Hits, Misses int
	// key's scratch buffers, reused across faces and evaluations so cache
	// hits allocate nothing (the map lookup on string(keyBuf) is
	// allocation-free; only a miss materializes the key string).
	on, off, dc []uint64
	keyBuf      []byte
	members     bitset.Set // face's members ∩ subset working set
}

type faceCost struct {
	cubes, literals int
	satisfied       bool
}

// NewEvaluator returns an evaluator for the given constraint set.
func NewEvaluator(cs *constraint.Set) *Evaluator {
	return &Evaluator{cs: cs, memo: make([]map[string]faceCost, len(cs.Faces))}
}

// Evaluate computes the Section-7 metrics with memoization.
func (e *Evaluator) Evaluate(a Assignment) Result {
	var r Result
	for fi := range e.cs.Faces {
		fc := e.face(fi, a)
		if !fc.satisfied {
			r.Violations++
		}
		r.Cubes += fc.cubes
		r.Literals += fc.literals
	}
	return r
}

// Of evaluates a single metric with memoization. Violations takes a fast
// path: the metric only needs the allocation-free span/containment check
// (CountViolations), never the per-face espresso minimization the cube and
// literal metrics memoize, so it skips the cache machinery entirely.
func (e *Evaluator) Of(m Metric, a Assignment) int {
	if m == Violations {
		return CountViolations(e.cs, a)
	}
	r := e.Evaluate(a)
	switch m {
	case Cubes:
		return r.Cubes
	case Literals:
		return r.Literals
	default:
		panic("cost: unknown metric")
	}
}

func (e *Evaluator) face(fi int, a Assignment) faceCost {
	f := e.cs.Faces[fi]
	// Fused intersect+popcount into a reusable set: the < 2 early-out is the
	// common case across faces, and it costs no allocation.
	if e.members.IntersectPopcountInto(f.Members, a.Subset) < 2 {
		return faceCost{satisfied: true}
	}
	members := e.members
	key := e.key(f, members, a)
	if e.memo[fi] == nil {
		e.memo[fi] = make(map[string]faceCost)
	}
	// string(key) in the index expression is recognized by the compiler and
	// does not allocate; only a miss pays for materializing the key.
	if fc, ok := e.memo[fi][string(key)]; ok {
		e.Hits++
		return fc
	}
	e.Misses++
	g := minimizeFace(f, members, a)
	fc := faceCost{
		cubes:     g.Size(),
		literals:  g.Literals(),
		satisfied: faceSatisfied(f, a),
	}
	e.memo[fi][string(key)] = fc
	return fc
}

// key canonically serializes the on/off/dc code multisets of one face
// under the assignment into e.keyBuf. Codes are bucketed by role and sorted
// so role-preserving permutations of symbols hit the same entry. The
// returned slice is valid until the next key call.
func (e *Evaluator) key(f constraint.Face, members bitset.Set, a Assignment) []byte {
	on, off, dc := e.on[:0], e.off[:0], e.dc[:0]
	a.Subset.ForEach(func(s int) bool {
		c := uint64(a.Codes[s])
		switch {
		case members.Has(s):
			on = append(on, c)
		case f.DontCare.Has(s) || f.Members.Has(s):
			dc = append(dc, c)
		default:
			off = append(off, c)
		}
		return true
	})
	e.on, e.off, e.dc = on, off, dc
	sortU64(on)
	sortU64(off)
	sortU64(dc)
	buf := e.keyBuf[:0]
	buf = append(buf, byte(a.Bits))
	for _, group := range [...][]uint64{on, off, dc} {
		buf = append(buf, 0xFF)
		for _, c := range group {
			var tmp [8]byte
			binary.LittleEndian.PutUint64(tmp[:], c)
			buf = append(buf, tmp[:]...)
		}
	}
	e.keyBuf = buf
	return buf
}

func sortU64(xs []uint64) {
	// Insertion sort: groups are small (tens of codes).
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
