package cost

import (
	"testing"

	"repro/internal/constraint"
	"repro/internal/hypercube"
)

// figure9Constraints is the Section-7 example: (e,f,c), (e,d,g), (a,b,d),
// (a,g,f,d) over symbols a..g.
func figure9Constraints() *constraint.Set {
	return constraint.MustParse(`
		symbols a b c d e f g
		face e f c
		face e d g
		face a b d
		face a g f d
	`)
}

// TestFigure9FourBitEncoding checks the paper's 4-bit solution: a=1010,
// b=0010, c=0011, d=1110, e=0111, f=1011, g=1100 satisfies all four
// constraints, so the encoded constraints cost exactly 4 cubes. The
// minimizer exploits the unused codes as don't-cares, implementing the
// constraints in 5 literals (the spanned faces alone would need 6).
func TestFigure9FourBitEncoding(t *testing.T) {
	cs := figure9Constraints()
	codes := codesFor(t, cs, map[string]uint64{
		"a": 0b1010, "b": 0b0010, "c": 0b0011, "d": 0b1110,
		"e": 0b0111, "f": 0b1011, "g": 0b1100,
	})
	a := FullAssignment(4, codes)
	r := Evaluate(cs, a)
	if r.Violations != 0 {
		t.Fatalf("the paper's 4-bit encoding satisfies all constraints, got %d violations", r.Violations)
	}
	if r.Cubes != 4 {
		t.Fatalf("4 satisfied constraints cost 4 cubes, got %d", r.Cubes)
	}
	if r.Literals != 5 {
		t.Fatalf("expected 5 literals (1+1+2+1), got %d", r.Literals)
	}
}

// TestFigure9ThreeBitImpossible checks the premise of Figure 9: no 3-bit
// encoding satisfies all four constraints.
func TestFigure9ThreeBitImpossible(t *testing.T) {
	cs := figure9Constraints()
	n := cs.N()
	codes := make([]hypercube.Code, n)
	used := [8]bool{}
	var rec func(s int) bool
	rec = func(s int) bool {
		if s == n {
			return CountViolations(cs, FullAssignment(3, codes)) == 0
		}
		for c := 0; c < 8; c++ {
			if used[c] {
				continue
			}
			used[c] = true
			codes[s] = hypercube.Code(c)
			if rec(s + 1) {
				return true
			}
			used[c] = false
		}
		return false
	}
	if rec(0) {
		t.Fatalf("found a 3-bit encoding satisfying all constraints; the paper requires 4 bits")
	}
}

// TestFigure9Cost reproduces the figure's cost evaluation: there exists a
// 3-bit encoding violating exactly 3 face constraints that needs 7 cubes
// and 14 literals to implement the encoded constraints.
func TestFigure9Cost(t *testing.T) {
	enc, r := SearchFigure9(figure9Constraints())
	if enc == nil {
		t.Fatal("no 3-bit encoding with the paper's cost profile (3 violated, 7 cubes, 14 literals) exists")
	}
	if r.Violations != 3 || r.Cubes != 7 || r.Literals != 14 {
		t.Fatalf("SearchFigure9 returned wrong profile: %+v", r)
	}
}

// TestSatisfiedConstraintIsOneCube checks the Section-7 claim directly: a
// satisfied constraint minimizes to a single product term, a violated one
// to at least two.
func TestSatisfiedConstraintIsOneCube(t *testing.T) {
	cs := constraint.MustParse(`
		symbols a b c d
		face a b
		face a c
	`)
	codes := codesFor(t, cs, map[string]uint64{"a": 0b00, "b": 0b01, "c": 0b10, "d": 0b11})
	// Face (a,b) spans -0? a=00,b=01: span mask fixes bit1=0 → face 0-;
	// c=10 outside, d=11 outside: satisfied.
	// Face (a,c): a=00,c=10 span fixes bit0=0 → face -0; b=01? bit0=1
	// outside; d=11 outside: satisfied.
	r := Evaluate(cs, FullAssignment(2, codes))
	if r.Violations != 0 || r.Cubes != 2 {
		t.Fatalf("both constraints satisfied ⇒ 2 cubes, got %+v", r)
	}

	// Now a violated constraint: put c inside the face of (a,b).
	codes2 := codesFor(t, cs, map[string]uint64{"a": 0b00, "b": 0b11, "c": 0b01, "d": 0b10})
	r2 := Evaluate(cs, FullAssignment(2, codes2))
	if r2.Violations == 0 {
		t.Fatal("expected a violation")
	}
	if r2.Cubes < 3 {
		t.Fatalf("a violated constraint needs at least 2 cubes, got total %d", r2.Cubes)
	}
}

func codesFor(t *testing.T, cs *constraint.Set, m map[string]uint64) []hypercube.Code {
	t.Helper()
	codes := make([]hypercube.Code, cs.N())
	for name, c := range m {
		i, ok := cs.Syms.Lookup(name)
		if !ok {
			t.Fatalf("unknown symbol %s", name)
		}
		codes[i] = c
	}
	return codes
}
