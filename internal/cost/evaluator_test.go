package cost

import (
	"math/rand"
	"testing"

	"repro/internal/constraint"
	"repro/internal/hypercube"
)

// TestEvaluatorMatchesDirect: the memoizing evaluator must agree with the
// direct evaluation on random assignments, and must hit its cache on
// repeats.
func TestEvaluatorMatchesDirect(t *testing.T) {
	cs := constraint.MustParse(`
		symbols a b c d e f g
		face e f c
		face e d g
		face a b [ c ] d
	`)
	ev := NewEvaluator(cs)
	rng := rand.New(rand.NewSource(71))
	n := cs.N()
	for trial := 0; trial < 50; trial++ {
		perm := rng.Perm(8)
		codes := make([]hypercube.Code, n)
		for i := 0; i < n; i++ {
			codes[i] = hypercube.Code(perm[i])
		}
		a := FullAssignment(3, codes)
		direct := Evaluate(cs, a)
		cached := ev.Evaluate(a)
		if direct != cached {
			t.Fatalf("trial %d: direct %+v != cached %+v", trial, direct, cached)
		}
		// Evaluate again: all faces must hit.
		before := ev.Misses
		if ev.Evaluate(a) != direct {
			t.Fatal("repeat evaluation changed")
		}
		if ev.Misses != before {
			t.Fatal("repeat evaluation must be fully cached")
		}
	}
	if ev.Hits == 0 {
		t.Fatal("cache never hit across trials")
	}
}

// TestEvaluatorSwapInvariance: swapping the codes of two symbols that play
// the same role for a constraint must hit the cache (the key is a code
// multiset per role).
func TestEvaluatorSwapInvariance(t *testing.T) {
	cs := constraint.MustParse(`
		symbols a b c d
		face a b
	`)
	ev := NewEvaluator(cs)
	codes := []hypercube.Code{0, 1, 2, 3}
	ev.Evaluate(FullAssignment(2, codes))
	misses := ev.Misses
	// Swap the two off-set symbols c and d: same multiset, must hit.
	codes[2], codes[3] = codes[3], codes[2]
	ev.Evaluate(FullAssignment(2, codes))
	if ev.Misses != misses {
		t.Fatal("role-preserving swap must be a cache hit")
	}
	// Swap a member with an off symbol: different key, must miss.
	codes[0], codes[2] = codes[2], codes[0]
	ev.Evaluate(FullAssignment(2, codes))
	if ev.Misses == misses {
		t.Fatal("role-changing swap must be a cache miss")
	}
}

func TestOfMatchesEvaluate(t *testing.T) {
	cs := constraint.MustParse(`
		symbols a b c d
		face a b
		face a c
	`)
	codes := []hypercube.Code{0, 3, 1, 2}
	a := FullAssignment(2, codes)
	r := Evaluate(cs, a)
	if Of(Violations, cs, a) != r.Violations ||
		Of(Cubes, cs, a) != r.Cubes ||
		Of(Literals, cs, a) != r.Literals {
		t.Fatal("Of must agree with Evaluate")
	}
	ev := NewEvaluator(cs)
	if ev.Of(Violations, a) != r.Violations ||
		ev.Of(Cubes, a) != r.Cubes ||
		ev.Of(Literals, a) != r.Literals {
		t.Fatal("Evaluator.Of must agree with Evaluate")
	}
}

func TestMetricString(t *testing.T) {
	if Violations.String() != "violations" || Cubes.String() != "cubes" || Literals.String() != "literals" {
		t.Fatal("metric names wrong")
	}
	if Metric(42).String() != "unknown" {
		t.Fatal("unknown metric must render as unknown")
	}
}

// TestPartialAssignment: restricted subsets evaluate only the surviving
// constraints.
func TestPartialAssignment(t *testing.T) {
	cs := constraint.MustParse(`
		symbols a b c d
		face a b
		face c d
	`)
	codes := make([]hypercube.Code, 4)
	codes[0], codes[1] = 0, 1
	a := Assignment{Bits: 1, Codes: codes}
	for _, s := range []string{"a", "b"} {
		i, _ := cs.Syms.Lookup(s)
		a.Subset.Add(i)
	}
	r := Evaluate(cs, a)
	// Face (c,d) has fewer than 2 members in the subset: skipped.
	if r.Cubes != 1 || r.Violations != 0 {
		t.Fatalf("restricted evaluation wrong: %+v", r)
	}
}
