package par

import (
	"runtime"
	"testing"
	"time"
)

func TestWorkerCount(t *testing.T) {
	if got := Workers(4).WorkerCount(); got != 4 {
		t.Fatalf("Workers(4).WorkerCount() = %d", got)
	}
	if got := Workers(0).WorkerCount(); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(0).WorkerCount() = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
}

// TestWorkersFor pins the adaptive threshold contract: below the cutoff the
// sequential path (1) is forced no matter how many workers were requested;
// at or above it the requested count passes through unchanged.
func TestWorkersFor(t *testing.T) {
	cases := []struct {
		workers, size, cutoff, want int
	}{
		{8, 10, 100, 1},   // small instance: forced sequential
		{8, 100, 100, 8},  // exactly at the cutoff: parallel
		{8, 500, 100, 8},  // large instance: parallel
		{1, 500, 100, 1},  // explicit sequential stays sequential
		{8, 0, 1, 1},      // empty instance below any positive cutoff
		{8, 5, 0, 8},      // zero cutoff disables the gate
	}
	for _, c := range cases {
		if got := Workers(c.workers).WorkersFor(c.size, c.cutoff); got != c.want {
			t.Fatalf("Workers(%d).WorkersFor(%d, %d) = %d, want %d",
				c.workers, c.size, c.cutoff, got, c.want)
		}
	}
	if got := Workers(0).WorkersFor(1000, 100); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(0).WorkersFor above cutoff = %d, want GOMAXPROCS", got)
	}
	if got := Workers(0).WorkersFor(10, 100); got != 1 {
		t.Fatalf("Workers(0).WorkersFor below cutoff = %d, want 1", got)
	}
}

func TestFillFrom(t *testing.T) {
	def := Parallelism{Workers: 4, TimeLimit: time.Second}
	if got := (Parallelism{}).FillFrom(def); got != def {
		t.Fatalf("FillFrom zero = %+v, want %+v", got, def)
	}
	explicit := Parallelism{Workers: 2, TimeLimit: time.Minute}
	if got := explicit.FillFrom(def); got != explicit {
		t.Fatalf("FillFrom explicit = %+v, want %+v", got, explicit)
	}
}
