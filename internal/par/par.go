// Package par holds the parallelism and time-budget configuration shared by
// every solver stage. Each stage's Options type (prime.Options,
// cover.Options, heuristic.Options, core.ExactOptions) embeds a Parallelism,
// so the two knobs are spelled — and behave — identically everywhere, and a
// pipeline-level default can flow into stages with FillFrom instead of
// hand-copied field assignments.
package par

import (
	"context"
	"runtime"
	"time"
)

// Parallelism is the worker-count/deadline pair accepted by every parallel
// solver stage.
//
// All engines in this repository are deterministic under parallelism:
// results are identical for any Workers value. TimeLimit, by contrast, can
// change results (anytime solvers return the incumbent on expiry), exactly
// as a caller-supplied context deadline would.
type Parallelism struct {
	// Workers sets the degree of parallelism: 0 means
	// runtime.GOMAXPROCS(0), 1 forces the sequential code path. Every
	// stage returns identical results for any value.
	Workers int
	// TimeLimit bounds wall-clock time; 0 means unlimited. It is applied
	// as a context deadline, layered under whatever deadline the caller's
	// context already carries.
	TimeLimit time.Duration
}

// Workers returns a Parallelism with the given worker count, for concise
// option literals: Options{Parallelism: par.Workers(4)}.
func Workers(n int) Parallelism { return Parallelism{Workers: n} }

// Budget returns a Parallelism with the given time limit.
func Budget(d time.Duration) Parallelism { return Parallelism{TimeLimit: d} }

// WorkerCount resolves the effective worker count: Workers when positive,
// runtime.GOMAXPROCS(0) otherwise.
func (p Parallelism) WorkerCount() int {
	if p.Workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return p.Workers
}

// WorkersFor resolves the worker count a stage should actually use for a
// problem of the given size: 1 — the sequential code path — when size is
// below cutoff, WorkerCount() otherwise.
//
// Every parallel engine in this repository pays a fixed fan-out cost
// (frontier expansion, per-worker scratch arenas, goroutine spawn and join)
// on the order of 0.1–1 ms before any useful concurrent work happens.
// Instances whose sequential solve time is comparable to that overhead are
// strictly slower through the parallel engine no matter how many CPUs are
// free, so each stage gates its engine on a size proxy measured against its
// kernel benchmarks (see the ParallelCutoff* constants in cover, prime and
// heuristic). Because every engine is deterministic in the worker count,
// falling back to the sequential path never changes results — it only
// removes the overhead, so `-j` never regresses small instances.
func (p Parallelism) WorkersFor(size, cutoff int) int {
	if size < cutoff {
		return 1
	}
	return p.WorkerCount()
}

// FillFrom returns p with zero-valued fields filled from def: an explicit
// per-stage setting always wins over the inherited pipeline default.
func (p Parallelism) FillFrom(def Parallelism) Parallelism {
	if p.Workers == 0 {
		p.Workers = def.Workers
	}
	if p.TimeLimit == 0 {
		p.TimeLimit = def.TimeLimit
	}
	return p
}

// Context layers TimeLimit (when set) under ctx as a deadline. The returned
// cancel function must always be called; with no TimeLimit it is a no-op and
// ctx is returned unchanged.
func (p Parallelism) Context(ctx context.Context) (context.Context, context.CancelFunc) {
	if p.TimeLimit > 0 {
		return context.WithTimeout(ctx, p.TimeLimit)
	}
	return ctx, func() {}
}
