package sim

import (
	"fmt"
	"math/rand"

	"repro/internal/blif"
	"repro/internal/fsm"
)

// NetlistSim simulates a parsed BLIF netlist cycle by cycle: combinational
// .names tables are evaluated to a fixpoint-free DAG order each cycle, and
// .latch registers load their input signals at the clock edge. It is the
// back end of the pipeline's replay verifier: unlike Hardware, which
// re-evaluates the in-memory PLA, NetlistSim consumes only the textual
// netlist, so a divergence implicates the BLIF emission itself.
type NetlistSim struct {
	nl      *blif.Netlist
	tables  map[string]*blif.Table // combinational driver per signal
	latchOf map[string]*blif.Latch // register driver per signal
	state   map[string]bool        // current latch outputs
}

// NewNetlistSim builds a simulator, validating that every signal has
// exactly one driver, latch initial values are specified, and the
// combinational logic is acyclic.
func NewNetlistSim(nl *blif.Netlist) (*NetlistSim, error) {
	s := &NetlistSim{
		nl:      nl,
		tables:  make(map[string]*blif.Table, len(nl.Tables)),
		latchOf: make(map[string]*blif.Latch, len(nl.Latches)),
		state:   make(map[string]bool, len(nl.Latches)),
	}
	driven := map[string]bool{}
	for _, in := range nl.Inputs {
		if driven[in] {
			return nil, fmt.Errorf("sim: duplicate input %s", in)
		}
		driven[in] = true
	}
	for i := range nl.Latches {
		l := &nl.Latches[i]
		if driven[l.Output] {
			return nil, fmt.Errorf("sim: signal %s has multiple drivers", l.Output)
		}
		driven[l.Output] = true
		if l.Init != 0 && l.Init != 1 {
			return nil, fmt.Errorf("sim: latch %s has unspecified initial value", l.Output)
		}
		s.latchOf[l.Output] = l
		s.state[l.Output] = l.Init == 1
	}
	for i := range nl.Tables {
		t := &nl.Tables[i]
		if driven[t.Output] {
			return nil, fmt.Errorf("sim: signal %s has multiple drivers", t.Output)
		}
		driven[t.Output] = true
		s.tables[t.Output] = t
	}
	for _, out := range nl.Outputs {
		if !driven[out] {
			return nil, fmt.Errorf("sim: output %s is undriven", out)
		}
	}
	for _, l := range nl.Latches {
		if !driven[l.Input] {
			return nil, fmt.Errorf("sim: latch input %s is undriven", l.Input)
		}
	}
	for _, t := range nl.Tables {
		for _, in := range t.Inputs {
			if !driven[in] {
				return nil, fmt.Errorf("sim: table input %s is undriven", in)
			}
		}
	}
	// Cycle check: depth-first over the combinational dependency graph.
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := map[string]int{}
	var visit func(sig string) error
	visit = func(sig string) error {
		t, ok := s.tables[sig]
		if !ok {
			return nil // primary input or latch output: a source
		}
		switch color[sig] {
		case gray:
			return fmt.Errorf("sim: combinational cycle through %s", sig)
		case black:
			return nil
		}
		color[sig] = gray
		for _, in := range t.Inputs {
			if err := visit(in); err != nil {
				return err
			}
		}
		color[sig] = black
		return nil
	}
	for _, t := range nl.Tables {
		if err := visit(t.Output); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// Reset returns every latch to its initial value.
func (s *NetlistSim) Reset() {
	for _, l := range s.nl.Latches {
		s.state[l.Output] = l.Init == 1
	}
}

// Step clocks the netlist once: inputs maps each primary input name to its
// value (absent names read as 0), the return maps each primary output name
// to its combinational value before the clock edge, and all latches load
// their input signals afterwards.
func (s *NetlistSim) Step(inputs map[string]bool) map[string]bool {
	values := make(map[string]bool, len(s.state)+len(s.nl.Inputs)+len(s.tables))
	for _, sig := range s.nl.Inputs {
		values[sig] = false
	}
	for sig, v := range s.state {
		values[sig] = v
	}
	for sig, v := range inputs {
		values[sig] = v
	}
	var eval func(sig string) bool
	eval = func(sig string) bool {
		if v, ok := values[sig]; ok {
			return v
		}
		t := s.tables[sig] // guaranteed by NewNetlistSim's driver check
		v := false
		for _, cube := range t.Cubes {
			match := true
			for i, in := range t.Inputs {
				bit := eval(in)
				if cube[i] == '1' && !bit || cube[i] == '0' && bit {
					match = false
					break
				}
			}
			if match {
				v = true
				break
			}
		}
		values[sig] = v
		return v
	}
	outs := make(map[string]bool, len(s.nl.Outputs))
	for _, out := range s.nl.Outputs {
		outs[out] = eval(out)
	}
	next := make(map[string]bool, len(s.nl.Latches))
	for _, l := range s.nl.Latches {
		next[l.Output] = eval(l.Input)
	}
	for sig, v := range next {
		s.state[sig] = v
	}
	return outs
}

// ReplayNetlist drives the symbolic machine and the synthesized netlist
// with the same random input walks and compares output traces, masking
// output bits the machine leaves unspecified ('-'). Walks follow defined
// transitions only — at each step a random transition out of the current
// symbolic state is chosen and a random minterm of its input cube applied —
// so incompletely specified machines replay without touching undefined
// input space. Primary inputs are named in<i>, outputs out<o>, matching
// blif.WriteEncoded. It returns an error describing the first divergence.
func ReplayNetlist(m *fsm.FSM, nl *blif.Netlist, sequences, length int, seed int64) error {
	if err := m.Validate(); err != nil {
		return err
	}
	sim, err := NewNetlistSim(nl)
	if err != nil {
		return err
	}
	byState := make([][]int, m.NumStates())
	for i, t := range m.Trans {
		byState[t.From] = append(byState[t.From], i)
	}
	if m.Reset < 0 || m.Reset >= m.NumStates() {
		return fmt.Errorf("sim: machine %s has no usable reset state", m.Name)
	}
	rng := rand.New(rand.NewSource(seed))
	for seq := 0; seq < sequences; seq++ {
		sim.Reset()
		state := m.Reset
		for step := 0; step < length; step++ {
			choices := byState[state]
			if len(choices) == 0 {
				break // dead-end state: the walk ends early
			}
			ti := choices[rng.Intn(len(choices))]
			in := randomMinterm(rng, m.Trans[ti].In)
			next, want, err := SymbolicStep(m, state, in)
			if err != nil {
				return err
			}
			inputs := make(map[string]bool, m.NumInputs)
			for b := 0; b < m.NumInputs; b++ {
				inputs[fmt.Sprintf("in%d", b)] = in&(1<<uint(b)) != 0
			}
			outs := sim.Step(inputs)
			mask := specifiedMask(m, state, in)
			var got uint64
			for o := 0; o < m.NumOutputs; o++ {
				if outs[fmt.Sprintf("out%d", o)] {
					got |= 1 << uint(o)
				}
			}
			if got&mask != want&mask {
				return fmt.Errorf("sim: sequence %d step %d (state %s, input %0*b): netlist outputs %0*b, machine %0*b",
					seq, step, m.States.Name(state), m.NumInputs, in,
					m.NumOutputs, got, m.NumOutputs, want)
			}
			state = next
		}
	}
	return nil
}

// randomMinterm picks a uniform random minterm of an input cube over
// {0,1,-}: fixed positions are kept, dashes flip a fair coin.
func randomMinterm(rng *rand.Rand, cube string) uint64 {
	var m uint64
	for i := 0; i < len(cube); i++ {
		switch cube[i] {
		case '1':
			m |= 1 << uint(i)
		case '-':
			if rng.Intn(2) == 1 {
				m |= 1 << uint(i)
			}
		}
	}
	return m
}
