package sim

import (
	"strings"
	"testing"

	"repro/internal/blif"
	"repro/internal/fsm"
	"repro/internal/kiss"
	"repro/internal/mv"
	"repro/internal/nova"
)

func mustNetlist(t *testing.T, text string) *blif.Netlist {
	t.Helper()
	nl, err := blif.ParseString(text)
	if err != nil {
		t.Fatal(err)
	}
	return nl
}

// A toggle flip-flop netlist, stepped by hand: the state bit flips whenever
// the input is 1, the output exposes the state bit.
func TestNetlistSimToggle(t *testing.T) {
	nl := mustNetlist(t, `
.model toggle
.inputs in0
.outputs out0
.latch ns0 st0 0
.names in0 st0 ns0
10 1
01 1
.names st0 out0
1 1
.end
`)
	s, err := NewNetlistSim(nl)
	if err != nil {
		t.Fatal(err)
	}
	// ns0 = in0 XOR st0, out0 = st0 sampled before the edge. From st0=0 the
	// input walk 1,0,1,1 visits states 0,1,1,0 at sampling time.
	want := []bool{false, true, true, false}
	ins := []bool{true, false, true, true}
	for i, in := range ins {
		outs := s.Step(map[string]bool{"in0": in})
		if outs["out0"] != want[i] {
			t.Fatalf("step %d: out0=%v want %v", i, outs["out0"], want[i])
		}
	}
	s.Reset()
	if outs := s.Step(map[string]bool{}); outs["out0"] {
		t.Fatal("Reset did not restore the initial state")
	}
}

// Step must sample outputs before the clock edge (Mealy semantics) and
// treat absent input names as 0.
func TestNetlistSimMealyAndDefaults(t *testing.T) {
	nl := mustNetlist(t, `
.model mealy
.inputs in0
.outputs out0
.latch ns0 st0 0
.names in0 ns0
1 1
.names in0 st0 out0
1- 1
.end
`)
	s, err := NewNetlistSim(nl)
	if err != nil {
		t.Fatal(err)
	}
	// out0 = in0: asserted the same cycle, not one later.
	if outs := s.Step(map[string]bool{"in0": true}); !outs["out0"] {
		t.Fatal("output lagged the input: latch updated before sampling")
	}
	// Absent input name reads as 0.
	if outs := s.Step(nil); outs["out0"] {
		t.Fatal("absent input did not default to 0")
	}
}

func TestNewNetlistSimRejects(t *testing.T) {
	cases := []struct {
		name, text, want string
	}{
		{"multiple drivers", ".model m\n.inputs a\n.outputs a\n.names a\n.end\n", "multiple drivers"},
		{"undriven output", ".model m\n.outputs y\n.end\n", "undriven"},
		{"undriven table input", ".model m\n.outputs y\n.names x y\n1 1\n.end\n", "undriven"},
		{"undriven latch input", ".model m\n.latch a b 0\n.end\n", "undriven"},
		{"unknown latch init", ".model m\n.inputs a\n.latch a b\n.end\n", "unspecified initial value"},
		{"combinational cycle", ".model m\n.outputs y\n.names y x\n1 1\n.names x y\n1 1\n.end\n", "cycle"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := NewNetlistSim(mustNetlist(t, tc.text))
			if err == nil {
				t.Fatal("accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

const replayKISS = `
.i 2
.o 2
00 a a 00
01 a b 01
1- a c 10
-- b a 11
00 c c 0-
-1 c a 01
10 c b 1-
`

func replayFixture(t *testing.T) (*fsm.FSM, string) {
	t.Helper()
	fm, err := kiss.ParseString(replayKISS)
	if err != nil {
		t.Fatal(err)
	}
	fm.Name = "replayfix"
	cs := mv.GenerateConstraints(fm, mv.OutputOptions{})
	enc, err := nova.Encode(cs, nova.Options{})
	if err != nil {
		t.Fatal(err)
	}
	pla := fm.Encode(enc)
	pla.Minimize()
	out, err := blif.FormatPLA(fm, enc, pla)
	if err != nil {
		t.Fatal(err)
	}
	return fm, out
}

// ReplayNetlist must pass on a correctly synthesized netlist, including an
// incompletely specified machine with output don't-cares.
func TestReplayNetlistPasses(t *testing.T) {
	fm, text := replayFixture(t)
	if err := ReplayNetlist(fm, mustNetlist(t, text), 8, 32, 1); err != nil {
		t.Fatalf("replay of a correct netlist failed: %v\n%s", err, text)
	}
}

// The verifier must not be vacuous: corrupting one cube of one output table
// has to surface as a divergence.
func TestReplayNetlistCatchesCorruption(t *testing.T) {
	fm, text := replayFixture(t)
	corrupted, changed := corruptOutputTable(text)
	if !changed {
		t.Fatalf("fixture netlist has no output cube to corrupt:\n%s", text)
	}
	err := ReplayNetlist(fm, mustNetlist(t, corrupted), 16, 64, 1)
	if err == nil {
		t.Fatalf("replay accepted a corrupted netlist:\noriginal:\n%s\ncorrupted:\n%s", text, corrupted)
	}
	if !strings.Contains(err.Error(), "netlist outputs") {
		t.Fatalf("unexpected error %q", err)
	}
}

// TestReplayNetlistWrongReset pins the latch-init path: a netlist whose
// registers start in the wrong state must diverge.
func TestReplayNetlistWrongReset(t *testing.T) {
	fm, text := replayFixture(t)
	flipped := strings.Replace(text, ".latch ns0 st0 0", ".latch ns0 st0 1", 1)
	if flipped == text {
		flipped = strings.Replace(text, ".latch ns0 st0 1", ".latch ns0 st0 0", 1)
	}
	if flipped == text {
		t.Fatalf("no latch line found:\n%s", text)
	}
	if err := ReplayNetlist(fm, mustNetlist(t, flipped), 16, 64, 1); err == nil {
		t.Fatal("replay accepted a netlist with the wrong reset code")
	}
}

// corruptOutputTable flips the first literal of the first cube of the first
// out<o> table, returning the mutated text.
func corruptOutputTable(text string) (string, bool) {
	lines := strings.Split(text, "\n")
	inOut := false
	for i, line := range lines {
		if strings.HasPrefix(line, ".names ") {
			inOut = strings.Contains(line, " out")
			continue
		}
		if !inOut || strings.HasPrefix(line, ".") || line == "" {
			continue
		}
		row := []byte(line)
		switch row[0] {
		case '1':
			row[0] = '0'
		case '0':
			row[0] = '1'
		default:
			row[0] = '0'
		}
		lines[i] = string(row)
		return strings.Join(lines, "\n"), true
	}
	return text, false
}
