// Package sim provides behavioral simulation of finite state machines and
// of their encoded two-level implementations, closing the verification loop
// of the encoding flow: after state assignment and PLA lowering, the
// encoded hardware (PLA + state register) must produce the same output
// trace as the symbolic machine on every input sequence.
//
// # Contract
//
// Three simulators, in increasing distance from the source machine:
// SymbolicStep/Machine replay the transition table itself (the oracle);
// Hardware evaluates the in-memory encoded PLA against a state register;
// NetlistSim consumes only a parsed BLIF netlist, so a divergence there
// implicates the textual emission, not just the encoding. The comparison
// drivers (Equivalent for Hardware, ReplayNetlist for NetlistSim) walk
// random *defined* transitions only — incompletely specified machines
// replay without ever touching undefined input space — and compare outputs
// under the machine's specified-bits mask, so output don't-cares never
// produce false divergences. All simulation is Mealy: outputs are sampled
// before the clock edge. Everything is deterministic under a fixed seed.
package sim

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/fsm"
	"repro/internal/hypercube"
)

// SymbolicState runs the symbolic machine one step: given the current
// state and an input vector (bit i of in is primary input i), it returns
// the next state and the asserted outputs, or an error when the behavior
// is undefined (incompletely specified machine) or non-deterministic.
func SymbolicStep(m *fsm.FSM, state int, in uint64) (next int, out uint64, err error) {
	found := false
	for i, t := range m.Trans {
		if t.From != state || !m.InCube(i).ContainsMinterm(m.NumInputs, in) {
			continue
		}
		o := outBits(t.Out)
		if found && (next != t.To || out != o) {
			return 0, 0, fmt.Errorf("sim: state %s is non-deterministic on input %0*b",
				m.States.Name(state), m.NumInputs, in)
		}
		next, out, found = t.To, o, true
	}
	if !found {
		return 0, 0, fmt.Errorf("sim: state %s has no transition for input %0*b",
			m.States.Name(state), m.NumInputs, in)
	}
	return next, out, nil
}

func outBits(pattern string) uint64 {
	var o uint64
	for i := 0; i < len(pattern); i++ {
		if pattern[i] == '1' {
			o |= 1 << uint(i)
		}
	}
	return o
}

// Machine simulates the symbolic machine over an input sequence, returning
// the output trace.
func Machine(m *fsm.FSM, start int, inputs []uint64) ([]uint64, error) {
	state := start
	outs := make([]uint64, 0, len(inputs))
	for _, in := range inputs {
		next, out, err := SymbolicStep(m, state, in)
		if err != nil {
			return nil, err
		}
		outs = append(outs, out)
		state = next
	}
	return outs, nil
}

// Hardware simulates the encoded implementation: a PLA evaluated
// combinationally, feeding a state register holding the current state
// code. It returns the primary-output trace.
type Hardware struct {
	PLA       *fsm.EncodedPLA
	Bits      int // state-register width
	NumInputs int // primary inputs
	State     hypercube.Code
}

// NewHardware builds the encoded implementation of machine m under enc,
// minimizing the PLA.
func NewHardware(m *fsm.FSM, enc *core.Encoding, start int) *Hardware {
	pla := m.Encode(enc)
	pla.Minimize()
	return &Hardware{
		PLA:       pla,
		Bits:      enc.Bits,
		NumInputs: m.NumInputs,
		State:     enc.Codes[start],
	}
}

// Step clocks the hardware once with the given primary inputs and returns
// the asserted primary outputs.
func (h *Hardware) Step(in uint64) uint64 {
	point := in | uint64(h.State)<<uint(h.NumInputs)
	var asserted uint64
	for _, r := range h.PLA.Rows {
		if r.In.ContainsMinterm(h.PLA.NumInputs, point) {
			asserted |= r.Out
		}
	}
	h.State = hypercube.Code(asserted) & (hypercube.Code(1)<<uint(h.Bits) - 1)
	return asserted >> uint(h.Bits)
}

// Run simulates the hardware over an input sequence.
func (h *Hardware) Run(inputs []uint64) []uint64 {
	outs := make([]uint64, 0, len(inputs))
	for _, in := range inputs {
		outs = append(outs, h.Step(in))
	}
	return outs
}

// Equivalent drives both the symbolic machine and its encoded hardware
// with the same random input sequences and compares the output traces.
// It returns an error describing the first divergence. Machines with
// output don't-cares ('-') are compared only on their specified bits.
func Equivalent(m *fsm.FSM, enc *core.Encoding, sequences, length int, seed int64) error {
	rng := rand.New(rand.NewSource(seed))
	limit := uint64(1) << uint(m.NumInputs)
	for s := 0; s < sequences; s++ {
		inputs := make([]uint64, length)
		for i := range inputs {
			inputs[i] = uint64(rng.Intn(int(limit)))
		}
		want, err := Machine(m, m.Reset, inputs)
		if err != nil {
			return err
		}
		hw := NewHardware(m, enc, m.Reset)
		got := hw.Run(inputs)
		// Track the symbolic state alongside to mask don't-care outputs.
		state := m.Reset
		for i, in := range inputs {
			mask := specifiedMask(m, state, in)
			if got[i]&mask != want[i]&mask {
				return fmt.Errorf("sim: sequence %d step %d: hardware outputs %0*b, machine %0*b",
					s, i, m.NumOutputs, got[i], m.NumOutputs, want[i])
			}
			state, _, _ = mustStep(m, state, in)
		}
	}
	return nil
}

func mustStep(m *fsm.FSM, state int, in uint64) (int, uint64, error) {
	return SymbolicStep(m, state, in)
}

// specifiedMask returns a mask of output bits specified (not '-') by the
// transition taken from state on input in.
func specifiedMask(m *fsm.FSM, state int, in uint64) uint64 {
	for i, t := range m.Trans {
		if t.From == state && m.InCube(i).ContainsMinterm(m.NumInputs, in) {
			var mask uint64
			for o := 0; o < m.NumOutputs; o++ {
				if t.Out[o] != '-' {
					mask |= 1 << uint(o)
				}
			}
			return mask
		}
	}
	return 0
}
