package sim

import (
	"context"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/fsm"
	"repro/internal/hypercube"
	"repro/internal/kiss"
	"repro/internal/mv"
)

func toggler(t *testing.T) *fsm.FSM {
	t.Helper()
	m, err := kiss.ParseString(`
.i 1
.o 1
0 off off 0
1 off on  1
0 on  on  1
1 on  off 0
`)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestSymbolicStep(t *testing.T) {
	m := toggler(t)
	off, _ := m.States.Lookup("off")
	on, _ := m.States.Lookup("on")
	next, out, err := SymbolicStep(m, off, 1)
	if err != nil || next != on || out != 1 {
		t.Fatalf("step: next=%d out=%b err=%v", next, out, err)
	}
	next, out, err = SymbolicStep(m, on, 0)
	if err != nil || next != on || out != 1 {
		t.Fatalf("step: next=%d out=%b err=%v", next, out, err)
	}
}

func TestSymbolicStepErrors(t *testing.T) {
	m, err := kiss.ParseString(".i 1\n.o 1\n0 a a 0\n")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := SymbolicStep(m, 0, 1); err == nil {
		t.Fatal("undefined input must error")
	}
	nd, err := kiss.ParseString(".i 1\n.o 1\n- a a 0\n1 a b 1\n")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := SymbolicStep(nd, 0, 1); err == nil || !strings.Contains(err.Error(), "non-deterministic") {
		t.Fatalf("non-determinism must be detected, got %v", err)
	}
}

func TestMachineTrace(t *testing.T) {
	m := toggler(t)
	outs, err := Machine(m, 0, []uint64{1, 0, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	want := []uint64{1, 1, 0, 1}
	for i := range want {
		if outs[i] != want[i] {
			t.Fatalf("trace %v, want %v", outs, want)
		}
	}
}

func TestHardwareMatchesMachine(t *testing.T) {
	m := toggler(t)
	enc := core.NewEncoding(m.States, 1, []hypercube.Code{0, 1})
	if err := Equivalent(m, enc, 10, 30, 42); err != nil {
		t.Fatal(err)
	}
}

// TestEncodedSuiteEquivalence is the flow's strongest end-to-end check:
// the exact encoder's codes drive hardware behaviorally equivalent to the
// symbolic machine.
func TestEncodedSuiteEquivalence(t *testing.T) {
	budgets := map[string]int{"dk512": 8, "master": 20, "exlinp": 40}
	for _, name := range []string{"dk512", "master", "exlinp"} {
		t.Run(name, func(t *testing.T) {
			m, err := fsm.GenerateByName(name)
			if err != nil {
				t.Fatal(err)
			}
			cs := mv.GenerateConstraints(m, mv.OutputOptions{MaxDominance: budgets[name], MaxDisjunctive: 3})
			res, err := core.ExactEncodeCtx(context.Background(), cs, core.ExactOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if err := Equivalent(m, res.Encoding, 5, 40, 7); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestBrokenEncodingDetected: assigning two states the same code must make
// the hardware diverge (and Equivalent must notice).
func TestBrokenEncodingDetected(t *testing.T) {
	m := toggler(t)
	enc := core.NewEncoding(m.States, 1, []hypercube.Code{0, 0})
	if err := Equivalent(m, enc, 5, 20, 1); err == nil {
		t.Fatal("duplicate codes must break equivalence")
	}
}

func TestDontCareOutputsIgnored(t *testing.T) {
	m, err := kiss.ParseString(`
.i 1
.o 2
0 a a 0-
1 a b 10
- b a 01
`)
	if err != nil {
		t.Fatal(err)
	}
	enc := core.NewEncoding(m.States, 1, []hypercube.Code{0, 1})
	if err := Equivalent(m, enc, 5, 20, 3); err != nil {
		t.Fatalf("don't-care outputs must not cause mismatches: %v", err)
	}
}

// TestMinimizedMachineEquivalent: the state-minimized quotient machine
// must produce identical output traces to the original.
func TestMinimizedMachineEquivalent(t *testing.T) {
	for _, name := range []string{"dk512", "master", "bbsse", "donfile"} {
		m, err := fsm.GenerateByName(name)
		if err != nil {
			t.Fatal(err)
		}
		q, _, err := fsm.MinimizeStates(m)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		rngSeed := int64(11)
		inputs := randomInputs(m.NumInputs, 60, rngSeed)
		want, err := Machine(m, m.Reset, inputs)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got, err := Machine(q, q.Reset, inputs)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("%s: traces diverge at step %d: %b vs %b", name, i, want[i], got[i])
			}
		}
	}
}

func randomInputs(width, length int, seed int64) []uint64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]uint64, length)
	for i := range out {
		out[i] = uint64(rng.Intn(1 << uint(width)))
	}
	return out
}
