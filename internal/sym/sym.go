// Package sym provides the symbol table shared by all encoding components: a
// bijection between symbol names (state names, symbolic values) and dense
// integer indices.
package sym

import (
	"fmt"
	"sort"
)

// Table maps symbol names to dense indices [0, N) and back.
type Table struct {
	names []string
	index map[string]int
}

// NewTable returns an empty symbol table.
func NewTable() *Table {
	return &Table{index: make(map[string]int)}
}

// FromNames builds a table containing the given names in order.
// Duplicate names are rejected.
func FromNames(names []string) (*Table, error) {
	t := NewTable()
	for _, n := range names {
		if _, ok := t.index[n]; ok {
			return nil, fmt.Errorf("sym: duplicate symbol %q", n)
		}
		t.Intern(n)
	}
	return t, nil
}

// Intern returns the index for name, adding it if absent.
func (t *Table) Intern(name string) int {
	if i, ok := t.index[name]; ok {
		return i
	}
	i := len(t.names)
	t.names = append(t.names, name)
	t.index[name] = i
	return i
}

// Lookup returns the index of name and whether it is present.
func (t *Table) Lookup(name string) (int, bool) {
	i, ok := t.index[name]
	return i, ok
}

// Name returns the name of symbol i.
func (t *Table) Name(i int) string {
	if i < 0 || i >= len(t.names) {
		return fmt.Sprintf("<sym#%d>", i)
	}
	return t.names[i]
}

// Len returns the number of symbols in the table.
func (t *Table) Len() int { return len(t.names) }

// Names returns a copy of all names in index order.
func (t *Table) Names() []string {
	out := make([]string, len(t.names))
	copy(out, t.names)
	return out
}

// SortedNames returns all names in lexicographic order.
func (t *Table) SortedNames() []string {
	out := t.Names()
	sort.Strings(out)
	return out
}
