package sym

import "testing"

func TestInternLookup(t *testing.T) {
	tab := NewTable()
	a := tab.Intern("a")
	b := tab.Intern("b")
	if a == b {
		t.Fatal("distinct names must get distinct indices")
	}
	if tab.Intern("a") != a {
		t.Fatal("Intern must be idempotent")
	}
	if i, ok := tab.Lookup("b"); !ok || i != b {
		t.Fatal("Lookup failed")
	}
	if _, ok := tab.Lookup("zzz"); ok {
		t.Fatal("Lookup must miss unknown names")
	}
	if tab.Len() != 2 {
		t.Fatalf("Len = %d", tab.Len())
	}
	if tab.Name(a) != "a" || tab.Name(b) != "b" {
		t.Fatal("Name round-trip failed")
	}
	if tab.Name(99) == "" {
		t.Fatal("out-of-range Name must return a placeholder")
	}
}

func TestFromNames(t *testing.T) {
	tab, err := FromNames([]string{"x", "y", "z"})
	if err != nil {
		t.Fatal(err)
	}
	if tab.Len() != 3 || tab.Name(1) != "y" {
		t.Fatal("FromNames order broken")
	}
	if _, err := FromNames([]string{"x", "x"}); err == nil {
		t.Fatal("duplicate names must be rejected")
	}
}

func TestNamesCopies(t *testing.T) {
	tab, _ := FromNames([]string{"b", "a"})
	names := tab.Names()
	names[0] = "mutated"
	if tab.Name(0) != "b" {
		t.Fatal("Names must return a copy")
	}
	sorted := tab.SortedNames()
	if sorted[0] != "a" || sorted[1] != "b" {
		t.Fatalf("SortedNames = %v", sorted)
	}
}
