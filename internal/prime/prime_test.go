package prime

import (
	"context"
	"errors"
	"math/rand"
	"sort"
	"testing"
	"time"

	"repro/internal/bitset"
	"repro/internal/dichotomy"
	"repro/internal/par"
)

// figure3Seeds builds the paper's nine initial encoding-dichotomies for the
// constraints (s0,s2,s4) (s0,s1,s4) (s1,s2,s3) (s1,s3,s4), with symbol s1
// forced into right blocks and the single unimplied uniqueness pair
// (s0, s4) — exactly the instance the Figure-3 cs/ps trace works.
func figure3Seeds() []dichotomy.D {
	return []dichotomy.D{
		dichotomy.Of([]int{0}, []int{4}),       // uniqueness s0;s4
		dichotomy.Of([]int{1}, []int{0, 2, 4}), // (s1; s0s2s4)
		dichotomy.Of([]int{3}, []int{0, 2, 4}), // (s3; s0s2s4)
		dichotomy.Of([]int{3}, []int{0, 1, 4}), // (s3; s0s1s4)
		dichotomy.Of([]int{2}, []int{0, 1, 4}), // (s2; s0s1s4)
		dichotomy.Of([]int{0}, []int{1, 2, 3}), // (s0; s1s2s3)
		dichotomy.Of([]int{4}, []int{1, 2, 3}), // (s4; s1s2s3)
		dichotomy.Of([]int{0}, []int{1, 3, 4}), // (s0; s1s3s4)
		dichotomy.Of([]int{2}, []int{1, 3, 4}), // (s2; s1s3s4)
	}
}

func sortedKeys(sets []bitset.Set) []string {
	keys := make([]string, len(sets))
	for i, s := range sets {
		keys[i] = s.String()
	}
	sort.Strings(keys)
	return keys
}

// TestFigure3MaximalCompatibles checks that both engines find exactly the
// paper's seven maximal compatibles on the Figure-3 instance.
func TestFigure3MaximalCompatibles(t *testing.T) {
	seeds := figure3Seeds()
	bk, err := GenerateSetsCtx(context.Background(), seeds, Options{Engine: BronKerbosch})
	if err != nil {
		t.Fatal(err)
	}
	cp, err := GenerateSetsCtx(context.Background(), seeds, Options{Engine: CSPS})
	if err != nil {
		t.Fatal(err)
	}
	if len(bk) != 7 {
		t.Fatalf("paper finds 7 maximal compatibles, BronKerbosch found %d: %v", len(bk), sortedKeys(bk))
	}
	kb, kc := sortedKeys(bk), sortedKeys(cp)
	if len(kb) != len(kc) {
		t.Fatalf("engines disagree: %v vs %v", kb, kc)
	}
	for i := range kb {
		if kb[i] != kc[i] {
			t.Fatalf("engines disagree: %v vs %v", kb, kc)
		}
	}
}

// TestMaximalCompatibleProperty verifies on random instances that every
// returned set is a clique of the compatibility relation, is maximal, and
// that no maximal clique is missed (cross-checked by brute force).
func TestMaximalCompatibleProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 200; trial++ {
		nsym := 3 + rng.Intn(4)
		nseeds := 2 + rng.Intn(7)
		var seeds []dichotomy.D
		seen := map[string]bool{}
		for len(seeds) < nseeds {
			var d dichotomy.D
			for s := 0; s < nsym; s++ {
				switch rng.Intn(3) {
				case 0:
					d.L.Add(s)
				case 1:
					d.R.Add(s)
				}
			}
			if d.L.IsEmpty() && d.R.IsEmpty() || seen[d.Key()] {
				continue
			}
			seen[d.Key()] = true
			seeds = append(seeds, d)
		}
		got, err := GenerateSetsCtx(context.Background(), seeds, Options{})
		if err != nil {
			t.Fatal(err)
		}
		want := bruteMaximalCompatibles(seeds)
		kg, kw := sortedKeys(got), sortedKeys(want)
		if len(kg) != len(kw) {
			t.Fatalf("trial %d: got %v want %v (seeds %v)", trial, kg, kw, seeds)
		}
		for i := range kg {
			if kg[i] != kw[i] {
				t.Fatalf("trial %d: got %v want %v", trial, kg, kw)
			}
		}
		// CSPS engine must agree too.
		cp, err := GenerateSetsCtx(context.Background(), seeds, Options{Engine: CSPS})
		if err != nil {
			t.Fatal(err)
		}
		kc := sortedKeys(cp)
		for i := range kg {
			if kc[i] != kg[i] {
				t.Fatalf("trial %d: cs/ps disagrees: %v vs %v", trial, kc, kg)
			}
		}
	}
}

// bruteMaximalCompatibles enumerates all subsets.
func bruteMaximalCompatibles(seeds []dichotomy.D) []bitset.Set {
	n := len(seeds)
	compatible := func(set int) bool {
		for i := 0; i < n; i++ {
			if set&(1<<uint(i)) == 0 {
				continue
			}
			for j := i + 1; j < n; j++ {
				if set&(1<<uint(j)) == 0 {
					continue
				}
				if !seeds[i].Compatible(seeds[j]) {
					return false
				}
			}
		}
		return true
	}
	var cliques []int
	for set := 1; set < 1<<uint(n); set++ {
		if compatible(set) {
			cliques = append(cliques, set)
		}
	}
	var out []bitset.Set
	for _, c := range cliques {
		maximal := true
		for _, d := range cliques {
			if d != c && d&c == c {
				maximal = false
				break
			}
		}
		if maximal {
			var s bitset.Set
			for i := 0; i < n; i++ {
				if c&(1<<uint(i)) != 0 {
					s.Add(i)
				}
			}
			out = append(out, s)
		}
	}
	return out
}

// TestGenerateUnions checks that Generate returns the union dichotomies of
// the maximal compatibles.
func TestGenerateUnions(t *testing.T) {
	seeds := []dichotomy.D{
		dichotomy.Of([]int{0}, []int{1}),
		dichotomy.Of([]int{2}, []int{1}),
		dichotomy.Of([]int{1}, []int{0}),
	}
	primes, err := GenerateCtx(context.Background(), seeds, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Seeds 0,1 are compatible (union (0 2; 1)); seed 2 conflicts with
	// both. Expect two primes.
	if len(primes) != 2 {
		t.Fatalf("want 2 primes, got %v", primes)
	}
	foundUnion := false
	for _, p := range primes {
		if p.Equal(dichotomy.Of([]int{0, 2}, []int{1})) {
			foundUnion = true
		}
	}
	if !foundUnion {
		t.Fatalf("missing union prime: %v", primes)
	}
}

func TestLimit(t *testing.T) {
	// n unconstrained uniqueness pairs over disjoint symbols: every subset
	// choosing one orientation per pair is a maximal compatible → 2^n
	// cliques. With n=8 that is 256 > limit 100.
	var seeds []dichotomy.D
	for i := 0; i < 8; i++ {
		seeds = append(seeds, dichotomy.Of([]int{2 * i}, []int{2*i + 1}))
		seeds = append(seeds, dichotomy.Of([]int{2*i + 1}, []int{2 * i}))
	}
	_, err := GenerateCtx(context.Background(), seeds, Options{Limit: 100})
	if !errors.Is(err, ErrLimit) {
		t.Fatalf("want ErrLimit, got %v", err)
	}
	_, err = GenerateSetsCtx(context.Background(), seeds, Options{Limit: 100, Engine: CSPS})
	if !errors.Is(err, ErrLimit) {
		t.Fatalf("cs/ps: want ErrLimit, got %v", err)
	}
	// Under a generous limit the count is exactly 2^8.
	sets, err := GenerateSetsCtx(context.Background(), seeds, Options{Limit: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if len(sets) != 256 {
		t.Fatalf("want 256 maximal compatibles, got %d", len(sets))
	}
}

func TestTimeLimit(t *testing.T) {
	var seeds []dichotomy.D
	for i := 0; i < 14; i++ {
		seeds = append(seeds, dichotomy.Of([]int{2 * i}, []int{2*i + 1}))
		seeds = append(seeds, dichotomy.Of([]int{2*i + 1}, []int{2 * i}))
	}
	_, err := GenerateCtx(context.Background(), seeds, Options{Limit: 1 << 30, Parallelism: par.Budget(time.Nanosecond)})
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("want ErrTimeout, got %v", err)
	}
}

func TestEmptySeeds(t *testing.T) {
	primes, err := GenerateCtx(context.Background(), nil, Options{})
	if err != nil || len(primes) != 0 {
		t.Fatalf("empty seeds: %v, %v", primes, err)
	}
}

// TestUnconstrainedPrimeCount verifies the paper's Section-5 claim: with n
// symbols and no face constraints, the n(n-1) uniqueness dichotomies
// generate exactly 2^n - 2 prime encoding-dichotomies.
func TestUnconstrainedPrimeCount(t *testing.T) {
	for n := 2; n <= 7; n++ {
		var seeds []dichotomy.D
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				if u != v {
					seeds = append(seeds, dichotomy.Of([]int{u}, []int{v}))
				}
			}
		}
		primes, err := GenerateCtx(context.Background(), seeds, Options{Limit: 1 << 20})
		if err != nil {
			t.Fatal(err)
		}
		want := 1<<uint(n) - 2
		if len(primes) != want {
			t.Fatalf("n=%d: %d primes, paper says 2^n-2 = %d", n, len(primes), want)
		}
		// Every prime is a total bipartition with both blocks non-empty.
		for _, p := range primes {
			if p.Support().Len() != n || p.L.IsEmpty() || p.R.IsEmpty() {
				t.Fatalf("n=%d: malformed prime %s", n, p)
			}
		}
	}
}
