// Package prime generates prime encoding-dichotomies: maximal compatibles of
// a list of seed encoding-dichotomies (Section 5.1 of the paper).
//
// Two engines are provided. Engine CSPS is a faithful implementation of the
// paper's Figure 2: pairwise incompatibilities form a 2-CNF
// product-of-sums; the cs/ps recursion with single-cube containment converts
// it to the irredundant sum-of-products whose terms are the minimal vertex
// covers, and the complement of each term is a maximal compatible. Engine
// BronKerbosch enumerates maximal cliques of the compatibility graph
// directly; it produces the identical set of primes and scales to the large
// benchmark instances. Both engines honor a configurable prime-count limit,
// mirroring the paper's 50 000-prime abort on planet and vmecont.
//
// # Cancellation
//
// Generation is bounded cooperatively through context.Context: GenerateCtx
// and GenerateSetsCtx poll ctx between recursion steps, so deadlines and
// explicit cancellation abort the exponential search promptly. The
// context-free entry points wrap context.Background() and derive a deadline
// from Options.TimeLimit, preserving the original API. ErrTimeout wraps
// context.DeadlineExceeded, so errors.Is(err, context.DeadlineExceeded)
// works on either path.
//
// # Parallelism
//
// With Options.Workers > 1 the Bron–Kerbosch engine fans the search tree
// out over a worker pool: the leftmost branches are peeled off sequentially
// into an ordered task list and the tasks are then consumed by the pool,
// with the prime-count limit enforced through one shared atomic counter so
// ErrLimit fires under exactly the same condition as the sequential engine.
// The parallel engine returns the primes in the identical order as the
// sequential one, so results are byte-for-byte reproducible regardless of
// worker count.
package prime

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/bitset"
	"repro/internal/dichotomy"
	"repro/internal/par"
	"repro/internal/trace"
)

// Engine selects the maximal-compatible generation algorithm.
type Engine int

const (
	// BronKerbosch enumerates maximal cliques of the compatibility graph
	// with pivoting. Default engine; the only one that parallelizes.
	BronKerbosch Engine = iota
	// CSPS is the paper's Figure-2 cs/ps recursion over the 2-CNF of
	// pairwise incompatibilities.
	CSPS
)

// ErrLimit is returned when more maximal compatibles exist than the
// configured limit.
var ErrLimit = errors.New("prime: maximal compatible limit exceeded")

// ErrTimeout is returned when generation exceeds the configured time
// budget; like ErrLimit it marks an instance as too large, matching the
// paper's starred Table-1 entries. It wraps context.DeadlineExceeded, so
// errors.Is(err, context.DeadlineExceeded) also reports true.
var ErrTimeout = fmt.Errorf("prime: generation time limit exceeded: %w", context.DeadlineExceeded)

// Options configures prime generation.
type Options struct {
	// Parallelism supplies the Workers/TimeLimit pair shared by all
	// solver stages. Workers drives the BronKerbosch engine only (CSPS is
	// inherently sequential and ignores it); TimeLimit bounds generation
	// wall-clock time, applied as a context deadline layered under
	// whatever deadline the caller's context already carries.
	par.Parallelism
	// Limit bounds the number of maximal compatibles generated; 0 means
	// DefaultLimit.
	Limit int
	// Engine selects the algorithm; default BronKerbosch.
	Engine Engine
	// Cache, when non-nil, memoizes pairwise compatibility checks in a
	// shard-locked cache (see dichotomy.CompatCache). Profitable when the
	// same seed pairs are re-checked across engine runs — e.g. the
	// BronKerbosch-vs-CSPS ablation, or repeated generation in a GPI
	// loop; for a one-shot run the direct bitset test is faster.
	Cache *dichotomy.CompatCache
}

// DefaultLimit matches the paper's experimental cut-off.
const DefaultLimit = 50000

func (o Options) limit() int {
	if o.Limit <= 0 {
		return DefaultLimit
	}
	return o.Limit
}

// ParallelCutoffSeeds is the seed count below which the Bron–Kerbosch
// engine and the compatibility pair sweep run sequentially regardless of
// Options.Workers. The parallel engine's fixed cost — peeling the search
// frontier, one scratch arena and result slab per worker, goroutine
// spawn/join — was measured at the same order as the whole sequential solve
// of the 48-seed kernel benchmark instance (~0.25 ms), where the snapshot
// recorded the parallel engine *slower* than sequential; below this cutoff
// fan-out cannot pay for itself on any machine.
const ParallelCutoffSeeds = 64

// parallelCutoffSeeds is the live gate value; tests lower it to force the
// parallel engine onto small instances.
var parallelCutoffSeeds = ParallelCutoffSeeds

func (o Options) workers() int {
	return o.WorkerCount()
}

// workersFor applies the adaptive sequential-fallback threshold for a
// problem of n seeds.
func (o Options) workersFor(n int) int {
	return o.WorkersFor(n, parallelCutoffSeeds)
}

// compatible is the seed-pair compatibility test, routed through the
// memoizing cache when one is configured.
func (o Options) compatible(d, e dichotomy.D) bool {
	if o.Cache != nil {
		return o.Cache.Compatible(d, e)
	}
	return d.Compatible(e)
}

// GenerateCtx returns the prime encoding-dichotomies of seeds: the unions
// of every maximal compatible subset. The seed order determines the output
// order deterministically. Generation stops with ErrTimeout when the
// context deadline expires and with the context's error when it is
// canceled.
func GenerateCtx(ctx context.Context, seeds []dichotomy.D, opts Options) ([]dichotomy.D, error) {
	sets, err := GenerateSetsCtx(ctx, seeds, opts)
	if err != nil {
		return nil, err
	}
	primes := make([]dichotomy.D, 0, len(sets))
	for _, s := range sets {
		primes = append(primes, unionOf(seeds, s))
	}
	return primes, nil
}

// GenerateSetsCtx returns the maximal compatibles themselves, each as a
// set of seed indices; see GenerateCtx for the cancellation contract.
//
// When the context carries a trace recorder (internal/trace), generation
// records one "prime.generate" span with seed/prime counts and — when a
// CompatCache is configured — its hit/miss totals; with no recorder the
// instrumentation is a zero-allocation no-op.
func GenerateSetsCtx(ctx context.Context, seeds []dichotomy.D, opts Options) ([]bitset.Set, error) {
	ctx, cancel := opts.Context(ctx)
	defer cancel()
	sp := trace.StartSpan(ctx, "prime.generate")
	var sets []bitset.Set
	var err error
	switch opts.Engine {
	case CSPS:
		sets, err = csps(ctx, seeds, opts)
	case BronKerbosch:
		if opts.workersFor(len(seeds)) > 1 {
			sets, err = bronKerboschParallel(ctx, seeds, opts)
		} else {
			sets, err = bronKerbosch(ctx, seeds, opts)
		}
	default:
		return nil, fmt.Errorf("prime: unknown engine %d", opts.Engine)
	}
	if sp != nil {
		sp.Set("seeds", len(seeds)).Set("primes", len(sets)).
			Set("workers", opts.workers()).SetBool("failed", err != nil)
		if opts.Cache != nil {
			hits, misses := opts.Cache.Stats()
			sp.Set64("compat_hits", hits).Set64("compat_misses", misses)
		}
		sp.End()
	}
	return sets, err
}

// ctxErr translates a context failure into the package's error vocabulary:
// a missed deadline becomes ErrTimeout (the paper's "too large" marker),
// an explicit cancellation surfaces as a wrapped context.Canceled.
func ctxErr(ctx context.Context) error {
	if err := ctx.Err(); errors.Is(err, context.DeadlineExceeded) {
		return ErrTimeout
	}
	return fmt.Errorf("prime: generation canceled: %w", context.Cause(ctx))
}

func unionOf(seeds []dichotomy.D, members bitset.Set) dichotomy.D {
	var u dichotomy.D
	members.ForEach(func(i int) bool {
		u.L.UnionWith(seeds[i].L)
		u.R.UnionWith(seeds[i].R)
		return true
	})
	return u
}

// compatibility builds the compatibility adjacency of the seeds:
// adj[i] holds j ≠ i iff seeds i and j are compatible (Definition 3.2).
// The quadratic pair sweep is spread over the worker pool; the result is
// independent of the worker count.
func compatibility(seeds []dichotomy.D, opts Options) []bitset.Set {
	n := len(seeds)
	workers := opts.workersFor(n)
	// upper[i] holds the compatible j > i; each row has a single writer, so
	// the first pass is embarrassingly parallel.
	upper := make([]bitset.Set, n)
	forEachRow(n, workers, func(i int) {
		upper[i] = bitset.New(n)
		for j := i + 1; j < n; j++ {
			if opts.compatible(seeds[i], seeds[j]) {
				upper[i].Add(j)
			}
		}
	})
	// Symmetrize: adj[i] = upper[i] ∪ {j < i : i ∈ upper[j]}. Again one
	// writer per row, reading only the now-frozen upper triangle.
	adj := make([]bitset.Set, n)
	forEachRow(n, workers, func(i int) {
		adj[i] = upper[i]
		for j := 0; j < i; j++ {
			if upper[j].Has(i) {
				adj[i].Add(j)
			}
		}
	})
	return adj
}
