// Package prime generates prime encoding-dichotomies: maximal compatibles of
// a list of seed encoding-dichotomies (Section 5.1 of the paper).
//
// Two engines are provided. Engine CSPS is a faithful implementation of the
// paper's Figure 2: pairwise incompatibilities form a 2-CNF
// product-of-sums; the cs/ps recursion with single-cube containment converts
// it to the irredundant sum-of-products whose terms are the minimal vertex
// covers, and the complement of each term is a maximal compatible. Engine
// BronKerbosch enumerates maximal cliques of the compatibility graph
// directly; it produces the identical set of primes and scales to the large
// benchmark instances. Both engines honor a configurable prime-count limit,
// mirroring the paper's 50 000-prime abort on planet and vmecont.
package prime

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/bitset"
	"repro/internal/dichotomy"
)

// Engine selects the maximal-compatible generation algorithm.
type Engine int

const (
	// BronKerbosch enumerates maximal cliques of the compatibility graph
	// with pivoting. Default engine.
	BronKerbosch Engine = iota
	// CSPS is the paper's Figure-2 cs/ps recursion over the 2-CNF of
	// pairwise incompatibilities.
	CSPS
)

// ErrLimit is returned when more maximal compatibles exist than the
// configured limit.
var ErrLimit = errors.New("prime: maximal compatible limit exceeded")

// ErrTimeout is returned when generation exceeds the configured time
// budget; like ErrLimit it marks an instance as too large, matching the
// paper's starred Table-1 entries.
var ErrTimeout = errors.New("prime: generation time limit exceeded")

// Options configures prime generation.
type Options struct {
	// Limit bounds the number of maximal compatibles generated; 0 means
	// DefaultLimit.
	Limit int
	// TimeLimit bounds generation wall-clock time; 0 means unlimited.
	TimeLimit time.Duration
	// Engine selects the algorithm; default BronKerbosch.
	Engine Engine
}

// DefaultLimit matches the paper's experimental cut-off.
const DefaultLimit = 50000

func (o Options) limit() int {
	if o.Limit <= 0 {
		return DefaultLimit
	}
	return o.Limit
}

// Generate returns the prime encoding-dichotomies of seeds: the unions of
// every maximal compatible subset. The seed order determines the output
// order deterministically.
func Generate(seeds []dichotomy.D, opts Options) ([]dichotomy.D, error) {
	sets, err := GenerateSets(seeds, opts)
	if err != nil {
		return nil, err
	}
	primes := make([]dichotomy.D, 0, len(sets))
	for _, s := range sets {
		primes = append(primes, unionOf(seeds, s))
	}
	return primes, nil
}

// GenerateSets returns the maximal compatibles themselves, each as a set of
// seed indices.
func GenerateSets(seeds []dichotomy.D, opts Options) ([]bitset.Set, error) {
	var deadline time.Time
	if opts.TimeLimit > 0 {
		deadline = time.Now().Add(opts.TimeLimit)
	}
	switch opts.Engine {
	case CSPS:
		return csps(seeds, opts.limit(), deadline)
	case BronKerbosch:
		return bronKerbosch(seeds, opts.limit(), deadline)
	default:
		return nil, fmt.Errorf("prime: unknown engine %d", opts.Engine)
	}
}

func unionOf(seeds []dichotomy.D, members bitset.Set) dichotomy.D {
	var u dichotomy.D
	members.ForEach(func(i int) bool {
		u.L.UnionWith(seeds[i].L)
		u.R.UnionWith(seeds[i].R)
		return true
	})
	return u
}

// compatibility builds the compatibility adjacency of the seeds:
// adj[i] holds j ≠ i iff seeds i and j are compatible (Definition 3.2).
func compatibility(seeds []dichotomy.D) []bitset.Set {
	n := len(seeds)
	adj := make([]bitset.Set, n)
	for i := range adj {
		adj[i] = bitset.New(n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if seeds[i].Compatible(seeds[j]) {
				adj[i].Add(j)
				adj[j].Add(i)
			}
		}
	}
	return adj
}

// bronKerbosch enumerates all maximal cliques of the compatibility graph
// with the classic pivoting recursion.
func bronKerbosch(seeds []dichotomy.D, limit int, deadline time.Time) ([]bitset.Set, error) {
	n := len(seeds)
	if n == 0 {
		return nil, nil
	}
	adj := compatibility(seeds)
	var out []bitset.Set
	var overflow, timedOut bool
	calls := 0

	var rec func(r, p, x bitset.Set)
	rec = func(r, p, x bitset.Set) {
		if overflow || timedOut {
			return
		}
		calls++
		if !deadline.IsZero() && calls%512 == 0 && time.Now().After(deadline) {
			timedOut = true
			return
		}
		if p.IsEmpty() && x.IsEmpty() {
			if len(out) >= limit {
				overflow = true
				return
			}
			out = append(out, r.Clone())
			return
		}
		// Pivot: vertex of P ∪ X with the most neighbours in P.
		pivot, best := -1, -1
		consider := func(u int) bool {
			d := bitset.Intersect(p, adj[u]).Len()
			if d > best {
				best, pivot = d, u
			}
			return true
		}
		p.ForEach(consider)
		x.ForEach(consider)
		cand := p.Clone()
		if pivot >= 0 {
			cand.DifferenceWith(adj[pivot])
		}
		cand.ForEach(func(v int) bool {
			if overflow {
				return false
			}
			r2 := r.Clone()
			r2.Add(v)
			rec(r2, bitset.Intersect(p, adj[v]), bitset.Intersect(x, adj[v]))
			p.Remove(v)
			x.Add(v)
			return true
		})
	}

	all := bitset.New(n)
	for i := 0; i < n; i++ {
		all.Add(i)
	}
	rec(bitset.New(n), all, bitset.New(n))
	if overflow {
		return nil, fmt.Errorf("%w (> %d)", ErrLimit, limit)
	}
	if timedOut {
		return nil, ErrTimeout
	}
	return out, nil
}
