package prime

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/bitset"
	"repro/internal/dichotomy"
)

// csps implements the paper's Figure-2 algorithm. The variables of the
// 2-CNF are the seed indices; a clause (i + j) records that seeds i and j
// are incompatible. The recursion cs picks a splitting variable x, rewrites
// the product of all clauses containing x as the two-term expression
// (x + Π partners), recurses on the remaining clauses, and multiplies the
// results with single-cube-containment minimization (procedure ps). Each
// term of the final sum-of-products is a minimal vertex cover of the
// incompatibility graph; the seeds *missing* from a term form a maximal
// compatible.
//
// The recursion polls ctx at every cs step, so cancellation aborts the
// exponential product promptly. The engine is inherently sequential — the
// cs/ps product is a chain of dependent multiplications — and ignores
// Options.Workers.
func csps(ctx context.Context, seeds []dichotomy.D, opts Options) ([]bitset.Set, error) {
	n := len(seeds)
	limit := opts.limit()
	if n == 0 {
		return nil, nil
	}
	// Collect incompatibility clauses.
	type clause struct{ a, b int }
	var clauses []clause
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if !opts.compatible(seeds[i], seeds[j]) {
				clauses = append(clauses, clause{i, j})
			}
		}
	}

	// cs over a clause list. Terms are bitsets of variables present.
	var cs func(cls []clause) ([]bitset.Set, error)
	cs = func(cls []clause) ([]bitset.Set, error) {
		if ctx.Err() != nil {
			return nil, ctxErr(ctx)
		}
		if len(cls) == 0 {
			return []bitset.Set{bitset.New(n)}, nil
		}
		// Splitting variable: the most frequent variable keeps the
		// two-term expression short and the recursion shallow.
		count := map[int]int{}
		for _, c := range cls {
			count[c.a]++
			count[c.b]++
		}
		x, best := -1, -1
		for v, k := range count {
			if k > best || (k == best && v < x) {
				x, best = v, k
			}
		}
		partners := bitset.New(n)
		var rest []clause
		for _, c := range cls {
			switch {
			case c.a == x:
				partners.Add(c.b)
			case c.b == x:
				partners.Add(c.a)
			default:
				rest = append(rest, c)
			}
		}
		sub, err := cs(rest)
		if err != nil {
			return nil, err
		}
		xOnly := bitset.New(n)
		xOnly.Add(x)
		return ps(ctx, []bitset.Set{xOnly, partners}, sub, limit)
	}

	terms, err := cs(clauses)
	if err != nil {
		return nil, err
	}
	if len(terms) > limit {
		return nil, fmt.Errorf("%w (> %d)", ErrLimit, limit)
	}

	// Complement each term to obtain the maximal compatibles.
	all := bitset.New(n)
	for i := 0; i < n; i++ {
		all.Add(i)
	}
	out := make([]bitset.Set, 0, len(terms))
	for _, t := range terms {
		out = append(out, bitset.Difference(all, t))
	}
	return out, nil
}

// ps multiplies the two-term expression expr1 with expr2 and minimizes the
// product with single-cube containment. The minimized product of a unate
// expression is its unique set of prime implicants, so containment alone is
// sufficient (footnote 3 of the paper).
//
// The containment pass is quadratic in the term count — on large instances
// it dwarfs the cs recursion that brackets it — so it polls ctx itself:
// without that, a deadline expiring mid-product would go unnoticed until
// the pass completed, which on exponential inputs is effectively never.
func ps(ctx context.Context, expr1, expr2 []bitset.Set, limit int) ([]bitset.Set, error) {
	product := make([]bitset.Set, 0, len(expr1)*len(expr2))
	for _, t1 := range expr1 {
		for _, t2 := range expr2 {
			product = append(product, bitset.Union(t1, t2))
		}
	}
	out, err := singleCubeContainment(ctx, product)
	if err != nil {
		return nil, err
	}
	if len(out) > limit {
		return nil, fmt.Errorf("%w (> %d)", ErrLimit, limit)
	}
	return out, nil
}

// sccCtxStride is how many containment candidates pass between context
// polls in singleCubeContainment.
const sccCtxStride = 256

// singleCubeContainment removes every term that is a superset of another
// term, leaving the minimal sum-of-products.
func singleCubeContainment(ctx context.Context, terms []bitset.Set) ([]bitset.Set, error) {
	type sized struct {
		t bitset.Set
		n int
	}
	ts := make([]sized, len(terms))
	for i, t := range terms {
		ts[i] = sized{t, t.Len()}
	}
	sort.SliceStable(ts, func(i, j int) bool { return ts[i].n < ts[j].n })
	var kept []sized
	seen := make(map[string]bool)
outer:
	for ci, c := range ts {
		if ci%sccCtxStride == 0 && ctx.Err() != nil {
			return nil, ctxErr(ctx)
		}
		k := c.t.Key()
		if seen[k] {
			continue
		}
		for _, k := range kept {
			if k.n < c.n && k.t.SubsetOf(c.t) {
				continue outer
			}
			if k.n == c.n && k.t.Equal(c.t) {
				continue outer
			}
		}
		seen[k] = true
		kept = append(kept, c)
	}
	out := make([]bitset.Set, len(kept))
	for i, k := range kept {
		out[i] = k.t
	}
	return out, nil
}
