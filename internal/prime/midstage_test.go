package prime

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/dichotomy"
)

// bigSeeds returns a seed set whose 2^n maximal compatibles take tens of
// milliseconds to enumerate — enough that a single-digit-millisecond
// deadline or cancellation reliably lands in the middle of generation
// rather than before it starts.
func bigSeeds(n int) []dichotomy.D {
	var seeds []dichotomy.D
	for i := 0; i < n; i++ {
		seeds = append(seeds, dichotomy.Of([]int{2 * i}, []int{2*i + 1}))
		seeds = append(seeds, dichotomy.Of([]int{2*i + 1}, []int{2 * i}))
	}
	return seeds
}

// TestDeadlineMidGeneration pins the prime stage's half of the pipeline
// cancellation contract: a deadline expiring while generation is running
// aborts with ErrTimeout (wrapping context.DeadlineExceeded) and NO
// partial result. Unlike the covering stage there is no anytime answer
// here — a truncated compatible set would silently shrink the candidate
// pool and cost optimality downstream, so the stage must fail loudly.
func TestDeadlineMidGeneration(t *testing.T) {
	seeds := bigSeeds(18) // ~50ms of work vs a 2ms deadline
	for _, engine := range []Engine{BronKerbosch, CSPS} {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Millisecond)
		sets, err := GenerateSetsCtx(ctx, seeds, Options{Limit: 1 << 30, Engine: engine})
		cancel()
		if !errors.Is(err, ErrTimeout) {
			t.Fatalf("engine %d: err = %v, want ErrTimeout", engine, err)
		}
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("engine %d: ErrTimeout must wrap context.DeadlineExceeded; got %v", engine, err)
		}
		if len(sets) != 0 {
			t.Fatalf("engine %d: deadline mid-generation returned %d partial sets, want none", engine, len(sets))
		}
	}
	// The dichotomy-producing wrapper inherits the same contract.
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Millisecond)
	defer cancel()
	primes, err := GenerateCtx(ctx, seeds, Options{Limit: 1 << 30})
	if !errors.Is(err, ErrTimeout) || len(primes) != 0 {
		t.Fatalf("GenerateCtx: primes=%d err=%v, want none + ErrTimeout", len(primes), err)
	}
}

// TestCancelMidGeneration pins the other abort path: an explicit
// cancellation mid-generation surfaces as a wrapped context.Canceled —
// distinguishable from a deadline (no ErrTimeout) — again with no partial
// result.
func TestCancelMidGeneration(t *testing.T) {
	seeds := bigSeeds(18)
	for _, engine := range []Engine{BronKerbosch, CSPS} {
		ctx, cancel := context.WithCancel(context.Background())
		timer := time.AfterFunc(2*time.Millisecond, cancel)
		sets, err := GenerateSetsCtx(ctx, seeds, Options{Limit: 1 << 30, Engine: engine})
		timer.Stop()
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("engine %d: err = %v, want wrapped context.Canceled", engine, err)
		}
		if errors.Is(err, ErrTimeout) {
			t.Fatalf("engine %d: explicit cancellation misreported as ErrTimeout: %v", engine, err)
		}
		if len(sets) != 0 {
			t.Fatalf("engine %d: cancellation mid-generation returned %d partial sets, want none", engine, len(sets))
		}
	}
}
