package prime

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"repro/internal/bitset"
	"repro/internal/dichotomy"
	"repro/internal/par"
)

// randomSeeds builds a list of random seed dichotomies over n symbols.
func randomSeeds(rng *rand.Rand, count, n int) []dichotomy.D {
	seeds := make([]dichotomy.D, 0, count)
	for len(seeds) < count {
		var d dichotomy.D
		for s := 0; s < n; s++ {
			switch rng.Intn(3) {
			case 0:
				d.L.Add(s)
			case 1:
				d.R.Add(s)
			}
		}
		if !d.L.IsEmpty() && !d.R.IsEmpty() {
			seeds = append(seeds, d)
		}
	}
	return seeds
}

// TestParallelMatchesSequential asserts that the parallel Bron–Kerbosch
// engine returns exactly the sequential output — same primes, same order —
// across randomized instances and worker counts. Run under -race this also
// exercises the engine's synchronization.
// forceParallel lowers the adaptive sequential-fallback cutoff for the
// duration of a test so small instances still exercise the parallel engine.
func forceParallel(t *testing.T) {
	t.Helper()
	old := parallelCutoffSeeds
	parallelCutoffSeeds = 0
	t.Cleanup(func() { parallelCutoffSeeds = old })
}

func TestParallelMatchesSequential(t *testing.T) {
	forceParallel(t)
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		seeds := randomSeeds(rng, 8+rng.Intn(25), 6+rng.Intn(8))
		seq, err := GenerateSetsCtx(context.Background(), seeds, Options{Parallelism: par.Workers(1)})
		if err != nil {
			t.Fatalf("trial %d: sequential: %v", trial, err)
		}
		for _, workers := range []int{2, 3, 8} {
			par, err := GenerateSetsCtx(context.Background(), seeds, Options{Parallelism: par.Workers(workers)})
			if err != nil {
				t.Fatalf("trial %d workers=%d: parallel: %v", trial, workers, err)
			}
			if len(par) != len(seq) {
				t.Fatalf("trial %d workers=%d: %d primes, sequential has %d",
					trial, workers, len(par), len(seq))
			}
			for i := range seq {
				if !par[i].Equal(seq[i]) {
					t.Fatalf("trial %d workers=%d: prime %d differs: %v vs %v",
						trial, workers, i, par[i], seq[i])
				}
			}
		}
	}
}

// TestAdaptiveThresholdDeterminism pins the sequential-fallback gate: with
// the cutoff set between two seed counts, the small instance takes the
// transparent sequential path and the large one the parallel engine, and
// both return the identical prime list in identical order across
// Workers(0), Workers(1) and Workers(8). Run under -race this covers the
// fallback path's (absence of) synchronization.
func TestAdaptiveThresholdDeterminism(t *testing.T) {
	old := parallelCutoffSeeds
	parallelCutoffSeeds = 20
	t.Cleanup(func() { parallelCutoffSeeds = old })

	rng := rand.New(rand.NewSource(23))
	for i, count := range []int{12, 30} { // straddles the 20-seed cutoff
		seeds := randomSeeds(rng, count, 8)
		var ref []bitset.Set
		for j, workers := range []int{1, 0, 8} {
			sets, err := GenerateSetsCtx(context.Background(), seeds, Options{Parallelism: par.Workers(workers)})
			if err != nil {
				t.Fatalf("instance %d workers=%d: %v", i, workers, err)
			}
			if j == 0 {
				ref = sets
				continue
			}
			if len(sets) != len(ref) {
				t.Fatalf("instance %d workers=%d: %d primes, want %d", i, workers, len(sets), len(ref))
			}
			for k := range ref {
				if !sets[k].Equal(ref[k]) {
					t.Fatalf("instance %d workers=%d: prime %d differs", i, workers, k)
				}
			}
		}
	}
}

// TestParallelLimit asserts ErrLimit fires in the parallel engine under the
// same condition as the sequential one: total maximal compatibles > limit.
func TestParallelLimit(t *testing.T) {
	forceParallel(t)
	rng := rand.New(rand.NewSource(11))
	seeds := randomSeeds(rng, 30, 10)
	all, err := GenerateSetsCtx(context.Background(), seeds, Options{Parallelism: par.Workers(1)})
	if err != nil {
		t.Fatalf("sequential: %v", err)
	}
	if len(all) < 3 {
		t.Skip("instance too small to exercise the limit")
	}
	for _, workers := range []int{1, 4} {
		if _, err := GenerateSetsCtx(context.Background(), seeds, Options{Parallelism: par.Workers(workers), Limit: len(all) - 1}); !errors.Is(err, ErrLimit) {
			t.Fatalf("workers=%d limit=%d: got %v, want ErrLimit", workers, len(all)-1, err)
		}
		if got, err := GenerateSetsCtx(context.Background(), seeds, Options{Parallelism: par.Workers(workers), Limit: len(all)}); err != nil || len(got) != len(all) {
			t.Fatalf("workers=%d limit=%d: got %d primes, err %v", workers, len(all), len(got), err)
		}
	}
}

// TestCancellation asserts that an already-canceled context aborts both
// engines with a wrapped context.Canceled, and that TimeLimit surfaces as
// ErrTimeout wrapping context.DeadlineExceeded.
func TestCancellation(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	seeds := randomSeeds(rng, 40, 12)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, engine := range []Engine{BronKerbosch, CSPS} {
		_, err := GenerateSetsCtx(ctx, seeds, Options{Engine: engine})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("engine %d: canceled ctx: got %v, want context.Canceled", engine, err)
		}
	}
	_, err := GenerateSetsCtx(context.Background(), seeds, Options{Parallelism: par.Budget(time.Nanosecond)})
	if err != nil && !errors.Is(err, ErrTimeout) && !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("TimeLimit: got %v", err)
	}
	if errors.Is(err, ErrTimeout) && !errors.Is(err, context.DeadlineExceeded) {
		t.Fatal("ErrTimeout does not wrap context.DeadlineExceeded")
	}
}

// TestCachedGenerationMatchesDirect runs both engines with a shared
// CompatCache and checks the output is unchanged.
func TestCachedGenerationMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	seeds := randomSeeds(rng, 20, 9)
	cache := dichotomy.NewCompatCache()
	for _, engine := range []Engine{BronKerbosch, CSPS} {
		plain, err := GenerateSetsCtx(context.Background(), seeds, Options{Engine: engine, Parallelism: par.Workers(1)})
		if err != nil {
			t.Fatalf("engine %d: %v", engine, err)
		}
		cached, err := GenerateSetsCtx(context.Background(), seeds, Options{Engine: engine, Parallelism: par.Workers(1), Cache: cache})
		if err != nil {
			t.Fatalf("engine %d cached: %v", engine, err)
		}
		if len(plain) != len(cached) {
			t.Fatalf("engine %d: cached run returned %d primes, want %d", engine, len(cached), len(plain))
		}
		for i := range plain {
			if !plain[i].Equal(cached[i]) {
				t.Fatalf("engine %d: prime %d differs under cache", engine, i)
			}
		}
	}
	if cache.Len() == 0 {
		t.Fatal("cache unused")
	}
}
