package prime_test

import (
	"context"
	"fmt"

	"repro/internal/constraint"
	"repro/internal/dichotomy"
	"repro/internal/prime"
)

// Example generates the prime encoding-dichotomies of a small input
// constraint problem with both engines, which always agree.
func Example() {
	cs := constraint.MustParse(`
		symbols a b c d
		face a b
		face c d
	`)
	seeds := dichotomy.Initial(cs)
	bk, _ := prime.GenerateCtx(context.Background(), seeds, prime.Options{Engine: prime.BronKerbosch})
	cp, _ := prime.GenerateCtx(context.Background(), seeds, prime.Options{Engine: prime.CSPS})
	fmt.Println("seeds:", len(seeds))
	fmt.Println("primes:", len(bk), "==", len(cp))
	// Output:
	// seeds: 12
	// primes: 14 == 14
}
