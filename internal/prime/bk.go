package prime

import (
	"context"
	"fmt"
	"math/bits"
	"sync"
	"sync/atomic"

	"repro/internal/bitset"
	"repro/internal/dichotomy"
)

// forEachRow runs fn(i) for every i in [0, n) on up to `workers`
// goroutines, pulling row indices from a shared atomic counter. fn must
// only write state owned by row i.
func forEachRow(n, workers int, fn func(i int)) {
	if workers <= 1 || n < 2 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	if workers > n {
		workers = n
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// bkCtxStride is how many recursion calls pass between context polls.
const bkCtxStride = 256

// bkState is one Bron–Kerbosch enumeration walker. The sequential engine
// uses a single walker for the whole graph; the parallel engine gives each
// task its own walker and they share `count` and `overflow`, so the
// prime-count limit is enforced globally exactly as in the sequential run.
//
// A walker recurses allocation-free in steady state: the growing clique R
// is one mutable set maintained with an add/undo discipline, per-level
// candidate/P/X scratch sets come from a per-walker arena and are returned
// while unwinding, and emitted cliques are carved out of a slab instead of
// individually cloned. Neither the arena nor the slab is safe for
// concurrent use, so the parallel engine keeps one of each per worker
// goroutine, reused across the tasks that worker drains.
type bkState struct {
	ctx      context.Context
	adj      []bitset.Set
	limit    int64
	count    *atomic.Int64 // cliques emitted across all walkers
	overflow *atomic.Bool  // limit exceeded somewhere
	calls    int
	stopped  bool       // ctx expired or overflow observed; unwind quietly
	r        bitset.Set // current clique; rec adds before descending, removes after
	arena    *bitset.Arena
	slab     *bitset.Slab
	out      []bitset.Set
}

// rec is the classic pivoting recursion over the walker's current clique
// s.r. Maximal cliques are appended to s.out in DFS order; the candidate
// iteration order is determined entirely by the pivot rule, so the order is
// deterministic. rec may mutate p and x freely (the caller's copies are
// rebuilt by overwrite before its next descent) and must leave s.r exactly
// as it found it — every Add is undone after the child returns, even when
// the walker is stopping, because parallel workers reuse the task's R set.
func (s *bkState) rec(p, x bitset.Set) {
	if s.stopped {
		return
	}
	s.calls++
	if s.calls%bkCtxStride == 0 && (s.ctx.Err() != nil || s.overflow.Load()) {
		s.stopped = true
		return
	}
	if p.IsEmpty() && x.IsEmpty() {
		if s.count.Add(1) > s.limit {
			s.overflow.Store(true)
			s.stopped = true
			return
		}
		s.out = append(s.out, s.slab.CloneInto(s.r))
		return
	}
	pivot := bkPivot(p, x, s.adj)
	cand := s.arena.Get()
	if pivot >= 0 {
		cand.DifferenceInto(p, s.adj[pivot])
	} else {
		cand.CopyFrom(p)
	}
	p2 := s.arena.Get()
	x2 := s.arena.Get()
loop:
	for wi, wc := 0, cand.WordCount(); wi < wc; wi++ {
		for w := cand.Word(wi); w != 0; w &= w - 1 {
			v := wi*wordBits + bits.TrailingZeros64(w)
			// p2/x2 are fully overwritten, so whatever the previous child
			// left in them is irrelevant.
			p2.IntersectInto(p, s.adj[v])
			x2.IntersectInto(x, s.adj[v])
			s.r.Add(v)
			s.rec(p2, x2)
			s.r.Remove(v)
			if s.stopped {
				break loop
			}
			p.Remove(v)
			x.Add(v)
		}
	}
	s.arena.Put(x2)
	s.arena.Put(p2)
	s.arena.Put(cand)
}

// wordBits mirrors the bitset word width for closure-free iteration.
const wordBits = 64

// bkPivot returns the vertex of P ∪ X with the most neighbours in P, or -1
// when both sets are empty.
func bkPivot(p, x bitset.Set, adj []bitset.Set) int {
	pivot, best := bkPivotScan(p, p, adj, -1, -1)
	pivot, _ = bkPivotScan(x, p, adj, pivot, best)
	return pivot
}

// bkPivotScan folds the pivot-degree maximum over one vertex set.
func bkPivotScan(s, p bitset.Set, adj []bitset.Set, pivot, best int) (int, int) {
	for wi, wc := 0, s.WordCount(); wi < wc; wi++ {
		for w := s.Word(wi); w != 0; w &= w - 1 {
			u := wi*wordBits + bits.TrailingZeros64(w)
			if d := bitset.IntersectLen(p, adj[u]); d > best {
				best, pivot = d, u
			}
		}
	}
	return pivot, best
}

// bronKerbosch enumerates all maximal cliques of the compatibility graph
// sequentially.
func bronKerbosch(ctx context.Context, seeds []dichotomy.D, opts Options) ([]bitset.Set, error) {
	n := len(seeds)
	if n == 0 {
		return nil, nil
	}
	adj := compatibility(seeds, opts)
	var count atomic.Int64
	var overflow atomic.Bool
	s := &bkState{
		ctx:      ctx,
		adj:      adj,
		limit:    int64(opts.limit()),
		count:    &count,
		overflow: &overflow,
		r:        bitset.New(n),
		arena:    bitset.NewArena(n),
		slab:     bitset.NewSlab(n),
	}
	all := bitset.New(n)
	for i := 0; i < n; i++ {
		all.Add(i)
	}
	s.rec(all, bitset.New(n))
	if overflow.Load() {
		return nil, fmt.Errorf("%w (> %d)", ErrLimit, opts.limit())
	}
	if ctx.Err() != nil {
		return nil, ctxErr(ctx)
	}
	return s.out, nil
}

// --- Parallel engine ---

// bkTasksPerWorker controls expansion granularity: the search frontier is
// peeled until about this many tasks per worker exist, so stragglers have
// somewhere to steal work from.
const bkTasksPerWorker = 8

// bkItem is one entry of the ordered search frontier: either a clique
// discovered during expansion (leaf) or a suspended subtree (task). The
// frontier preserves the sequential DFS order, so concatenating the items'
// cliques in frontier order reproduces the sequential output exactly.
type bkItem struct {
	leaf    bool
	clique  bitset.Set   // when leaf
	r, p, x bitset.Set   // when task
	out     []bitset.Set // task result, written only by the executing worker
}

// bronKerboschParallel fans the clique enumeration out over a worker pool.
// Expansion peels the leftmost unexpanded node off the frontier — exactly
// the node the sequential recursion would enter next — until the frontier
// holds enough independent subtrees; the pool then drains the subtrees,
// stealing the next frontier task as each worker goes idle. One shared
// atomic clique counter preserves the ErrLimit semantics of the sequential
// engine: the error fires iff the total number of maximal compatibles
// exceeds the limit, a condition independent of enumeration order.
func bronKerboschParallel(ctx context.Context, seeds []dichotomy.D, opts Options) ([]bitset.Set, error) {
	n := len(seeds)
	if n == 0 {
		return nil, nil
	}
	adj := compatibility(seeds, opts)
	limit := int64(opts.limit())
	workers := opts.workers()
	target := workers * bkTasksPerWorker

	all := bitset.New(n)
	for i := 0; i < n; i++ {
		all.Add(i)
	}
	items := []*bkItem{{r: bitset.New(n), p: all, x: bitset.New(n)}}
	tasks := 1

	var count atomic.Int64
	var overflow atomic.Bool

	// Expansion: replace the first task — the node the sequential recursion
	// would enter next — with its children until enough tasks exist.
	// Splicing children in place keeps the frontier in DFS order. The step
	// cap bounds the sequential prelude on skinny trees that keep yielding
	// a single child.
	first := 0 // index of the first task; everything before it is a leaf
	for steps := 0; tasks > 0 && tasks < target && steps < 16*target; steps++ {
		for items[first].leaf {
			first++
		}
		if ctx.Err() != nil {
			return nil, ctxErr(ctx)
		}
		it := items[first]
		children, clique := expandBK(it, adj)
		tasks--
		switch {
		case clique:
			if count.Add(1) > limit {
				return nil, fmt.Errorf("%w (> %d)", ErrLimit, opts.limit())
			}
			items[first] = &bkItem{leaf: true, clique: it.r}
		case len(children) == 0: // dead end: P empty but X not — no clique here
			items = append(items[:first], items[first+1:]...)
		default:
			items = append(items[:first], append(children, items[first+1:]...)...)
			tasks += len(children)
		}
	}

	// Drain the remaining tasks with the pool.
	var taskIdx []int
	for i, it := range items {
		if !it.leaf {
			taskIdx = append(taskIdx, i)
		}
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers && w < len(taskIdx); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Scratch arena and result slab are per-goroutine (neither is
			// concurrency-safe) and reused across every task this worker
			// drains; rec's add/undo discipline leaves each task's R set
			// unchanged, so tasks cannot leak state into one another.
			arena := bitset.NewArena(n)
			slab := bitset.NewSlab(n)
			for {
				k := int(next.Add(1)) - 1
				if k >= len(taskIdx) || overflow.Load() || ctx.Err() != nil {
					return
				}
				it := items[taskIdx[k]]
				s := &bkState{
					ctx:      ctx,
					adj:      adj,
					limit:    limit,
					count:    &count,
					overflow: &overflow,
					r:        it.r,
					arena:    arena,
					slab:     slab,
				}
				s.rec(it.p, it.x)
				it.out = s.out
			}
		}()
	}
	wg.Wait()

	if overflow.Load() {
		return nil, fmt.Errorf("%w (> %d)", ErrLimit, opts.limit())
	}
	if ctx.Err() != nil {
		return nil, ctxErr(ctx)
	}
	out := make([]bitset.Set, 0, count.Load())
	for _, it := range items {
		if it.leaf {
			out = append(out, it.clique)
		} else {
			out = append(out, it.out...)
		}
	}
	return out, nil
}

// expandBK expands a task node one level, returning its children in the
// order the sequential recursion would visit them, or clique=true when the
// node is itself a maximal clique. A false clique with no children is a
// dead end (P exhausted while X is not). Child k inherits the P and X sets
// as mutated by its earlier siblings, mirroring the sequential loop.
func expandBK(it *bkItem, adj []bitset.Set) (children []*bkItem, clique bool) {
	if it.p.IsEmpty() && it.x.IsEmpty() {
		return nil, true
	}
	pivot := bkPivot(it.p, it.x, adj)
	cand := it.p.Clone()
	if pivot >= 0 {
		cand.DifferenceWith(adj[pivot])
	}
	p, x := it.p.Clone(), it.x.Clone()
	cand.ForEach(func(v int) bool {
		r2 := it.r.Clone()
		r2.Add(v)
		children = append(children, &bkItem{
			r: r2,
			p: bitset.Intersect(p, adj[v]),
			x: bitset.Intersect(x, adj[v]),
		})
		p.Remove(v)
		x.Add(v)
		return true
	})
	return children, false
}
