package prime

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/dichotomy"
	"repro/internal/par"
)

// kernelSeeds builds a deterministic pseudo-random seed set over [0, n):
// each seed assigns only a sparse sample of the symbols, which keeps the
// pairwise conflict probability low and the compatibility graph dense
// enough for a deep Bron–Kerbosch tree — the regime the paper's seed sets
// (one initial dichotomy per symbol pair) live in.
func kernelSeeds(count, n int, seed int64) []dichotomy.D {
	rng := rand.New(rand.NewSource(seed))
	ds := make([]dichotomy.D, count)
	for i := range ds {
		var d dichotomy.D
		for s := 0; s < n; s++ {
			switch rng.Intn(12) {
			case 0:
				d.L.Add(s)
			case 1:
				d.R.Add(s)
			}
		}
		if d.L.IsEmpty() {
			d.L.Add(i % n)
			d.R.Remove(i % n)
		}
		ds[i] = d
	}
	return ds
}

// BenchmarkBronKerboschKernel measures the sequential clique-enumeration
// hot path: allocations here are per recursion node, so allocs/op tracks
// the cloning discipline of bkState.rec directly.
func BenchmarkBronKerboschKernel(b *testing.B) {
	seeds := kernelSeeds(48, 32, 7)
	opts := Options{Parallelism: par.Workers(1), Limit: 1 << 30}
	if _, err := GenerateSetsCtx(context.Background(), seeds, opts); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := GenerateSetsCtx(context.Background(), seeds, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBronKerboschParallelKernel runs clique enumeration with
// Workers(0) — all CPUs — below the adaptive cutoff (small: the engine
// falls back to the sequential path, so `-j` costs nothing) and above it
// (large: the frontier-peeling parallel engine engages when more than one
// CPU is available). Either way the op must never be slower than the
// sequential enumeration of the same instance: that is the contract
// ParallelCutoffSeeds pins.
func BenchmarkBronKerboschParallelKernel(b *testing.B) {
	run := func(seeds []dichotomy.D) func(b *testing.B) {
		return func(b *testing.B) {
			opts := Options{Parallelism: par.Workers(0), Limit: 1 << 30}
			if _, err := GenerateSetsCtx(context.Background(), seeds, opts); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := GenerateSetsCtx(context.Background(), seeds, opts); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	// 48 seeds: below ParallelCutoffSeeds (64), sequential fallback.
	b.Run("small", run(kernelSeeds(48, 32, 7)))
	// 96 seeds: above the cutoff, parallel engine (on multi-CPU machines;
	// with GOMAXPROCS=1 WorkerCount is 1 and the fallback holds).
	b.Run("large", run(kernelSeeds(96, 32, 9)))
}
