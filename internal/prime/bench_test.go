package prime

import (
	"math/rand"
	"testing"

	"repro/internal/dichotomy"
	"repro/internal/par"
)

// kernelSeeds builds a deterministic pseudo-random seed set over [0, n):
// each seed assigns only a sparse sample of the symbols, which keeps the
// pairwise conflict probability low and the compatibility graph dense
// enough for a deep Bron–Kerbosch tree — the regime the paper's seed sets
// (one initial dichotomy per symbol pair) live in.
func kernelSeeds(count, n int, seed int64) []dichotomy.D {
	rng := rand.New(rand.NewSource(seed))
	ds := make([]dichotomy.D, count)
	for i := range ds {
		var d dichotomy.D
		for s := 0; s < n; s++ {
			switch rng.Intn(12) {
			case 0:
				d.L.Add(s)
			case 1:
				d.R.Add(s)
			}
		}
		if d.L.IsEmpty() {
			d.L.Add(i % n)
			d.R.Remove(i % n)
		}
		ds[i] = d
	}
	return ds
}

// BenchmarkBronKerboschKernel measures the sequential clique-enumeration
// hot path: allocations here are per recursion node, so allocs/op tracks
// the cloning discipline of bkState.rec directly.
func BenchmarkBronKerboschKernel(b *testing.B) {
	seeds := kernelSeeds(48, 32, 7)
	opts := Options{Parallelism: par.Workers(1), Limit: 1 << 30}
	if _, err := GenerateSets(seeds, opts); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := GenerateSets(seeds, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBronKerboschParallelKernel is the same instance through the
// frontier-peeling parallel engine with all CPUs.
func BenchmarkBronKerboschParallelKernel(b *testing.B) {
	seeds := kernelSeeds(48, 32, 7)
	opts := Options{Parallelism: par.Workers(0), Limit: 1 << 30}
	if _, err := GenerateSets(seeds, opts); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := GenerateSets(seeds, opts); err != nil {
			b.Fatal(err)
		}
	}
}
