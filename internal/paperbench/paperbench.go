// Package paperbench runs the full synthesis pipeline over the committed
// benchmark corpus for every encoding strategy and renders the paper-style
// comparison tables that EXPERIMENTS.md embeds. Every number in the tables
// is deterministic (fixed seeds, worker-count-invariant engines, no wall
// times), so regeneration is byte-identical and `paperbench -check` can
// fail CI when the committed document drifts from the code.
package paperbench

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/corpus"
	"repro/internal/pipeline"
)

// Result is one corpus machine's reports, one per strategy.
type Result struct {
	Machine corpus.Machine
	Reports map[pipeline.Strategy]*pipeline.Report
}

// Options configures a matrix run.
type Options struct {
	// Strategies to compare; nil means pipeline.Strategies.
	Strategies []pipeline.Strategy
	// Workers bounds concurrent pipeline runs; 0 means 4. Results are
	// independent of the worker count.
	Workers int
}

// RunMatrix executes corpus × strategies, preserving corpus order. Any
// pipeline failure aborts the whole matrix: the tables must never be
// rendered from partial data.
func RunMatrix(ctx context.Context, machines []corpus.Machine, opts Options) ([]Result, error) {
	strategies := opts.Strategies
	if len(strategies) == 0 {
		strategies = pipeline.Strategies
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = 4
	}

	results := make([]Result, len(machines))
	for i := range machines {
		results[i] = Result{
			Machine: machines[i],
			Reports: make(map[pipeline.Strategy]*pipeline.Report, len(strategies)),
		}
	}

	type job struct{ mi, si int }
	jobs := make(chan job)
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				m, s := machines[j.mi], strategies[j.si]
				rep, err := pipeline.Run(ctx, m.FSM, pipeline.Options{Strategy: s})
				mu.Lock()
				if err != nil && firstErr == nil {
					firstErr = fmt.Errorf("paperbench: %s/%s: %w", m.Name, s, err)
				}
				results[j.mi].Reports[s] = rep
				mu.Unlock()
			}
		}()
	}
	for mi := range machines {
		for si := range strategies {
			jobs <- job{mi, si}
		}
	}
	close(jobs)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return results, nil
}

// OverviewTable renders the corpus manifest as a markdown table.
func OverviewTable(machines []corpus.Machine) string {
	var b strings.Builder
	b.WriteString("| machine | states | inputs | outputs | transitions | provenance |\n")
	b.WriteString("|---|---:|---:|---:|---:|---|\n")
	for _, m := range machines {
		fmt.Fprintf(&b, "| %s | %d | %d | %d | %d | %s |\n",
			m.Name, m.States, m.Inputs, m.Outputs, m.Transitions, m.Provenance)
	}
	return b.String()
}

// EncodingTable compares code length and face-constraint satisfaction per
// strategy, plus the connected-component count of each machine's extracted
// constraint set (the decomposed solver's unit of caching and parallelism).
// An exact-strategy entry whose search exhausted its budget before proving
// minimality is marked with a dagger.
func EncodingTable(results []Result, strategies []pipeline.Strategy) string {
	var b strings.Builder
	b.WriteString("| machine | faces | dom | disj | comp |")
	for _, s := range strategies {
		fmt.Fprintf(&b, " %s bits | viol |", s)
	}
	b.WriteString("\n|---|---:|---:|---:|---:|")
	for range strategies {
		b.WriteString("---:|---:|")
	}
	b.WriteByte('\n')
	for _, r := range results {
		// Constraint counts come from the exact report when present (only
		// the exact path extracts output constraints), else the first
		// strategy's.
		cc := r.Reports[pipeline.Exact]
		if cc == nil {
			cc = r.Reports[strategies[0]]
		}
		fmt.Fprintf(&b, "| %s | %d | %d | %d | %d |", r.Machine.Name, cc.Faces, cc.Dominances, cc.Disjunctives, cc.Components)
		for _, s := range strategies {
			rep := r.Reports[s]
			bits := fmt.Sprintf("%d", rep.Bits)
			if s == pipeline.Exact && !rep.Optimal {
				bits += "†"
			}
			fmt.Fprintf(&b, " %s | %d |", bits, rep.Violations)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// metricTable renders one per-strategy integer metric with a totals row.
func metricTable(results []Result, strategies []pipeline.Strategy, metric func(*pipeline.Report) int) string {
	var b strings.Builder
	b.WriteString("| machine |")
	for _, s := range strategies {
		fmt.Fprintf(&b, " %s |", s)
	}
	b.WriteString("\n|---|")
	for range strategies {
		b.WriteString("---:|")
	}
	b.WriteByte('\n')
	totals := make(map[pipeline.Strategy]int, len(strategies))
	for _, r := range results {
		fmt.Fprintf(&b, "| %s |", r.Machine.Name)
		for _, s := range strategies {
			v := metric(r.Reports[s])
			totals[s] += v
			fmt.Fprintf(&b, " %d |", v)
		}
		b.WriteByte('\n')
	}
	b.WriteString("| **total** |")
	for _, s := range strategies {
		fmt.Fprintf(&b, " **%d** |", totals[s])
	}
	b.WriteByte('\n')
	return b.String()
}

// CubesTable compares minimized product-term counts.
func CubesTable(results []Result, strategies []pipeline.Strategy) string {
	return metricTable(results, strategies, func(r *pipeline.Report) int { return r.Cubes })
}

// LiteralsTable compares minimized literal counts.
func LiteralsTable(results []Result, strategies []pipeline.Strategy) string {
	return metricTable(results, strategies, func(r *pipeline.Report) int { return r.Literals })
}

// ReplayTable reports the end-to-end replay verdict per cell.
func ReplayTable(results []Result, strategies []pipeline.Strategy) string {
	var b strings.Builder
	b.WriteString("| machine |")
	for _, s := range strategies {
		fmt.Fprintf(&b, " %s |", s)
	}
	b.WriteString("\n|---|")
	for range strategies {
		b.WriteString("---:|")
	}
	b.WriteByte('\n')
	for _, r := range results {
		fmt.Fprintf(&b, "| %s |", r.Machine.Name)
		for _, s := range strategies {
			rep := r.Reports[s]
			cell := "—"
			if rep.Replay != nil {
				if rep.Replay.OK {
					cell = fmt.Sprintf("ok (%d×%d)", rep.Replay.Sequences, rep.Replay.Length)
				} else {
					cell = "FAIL"
				}
			}
			fmt.Fprintf(&b, " %s |", cell)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Blocks renders every named table block EXPERIMENTS.md embeds.
func Blocks(machines []corpus.Machine, results []Result, strategies []pipeline.Strategy) map[string]string {
	if len(strategies) == 0 {
		strategies = pipeline.Strategies
	}
	return map[string]string{
		"corpus":   OverviewTable(machines),
		"encoding": EncodingTable(results, strategies),
		"cubes":    CubesTable(results, strategies),
		"literals": LiteralsTable(results, strategies),
		"replay":   ReplayTable(results, strategies),
	}
}

const (
	beginFmt = "<!-- paperbench:begin %s -->"
	endFmt   = "<!-- paperbench:end %s -->"
)

// Splice replaces the content between each block's begin/end markers in
// doc with the freshly rendered table, leaving everything outside the
// markers untouched. Every block must have its marker pair in the
// document; unknown markers in the document are an error too, so the
// document and the generator cannot disagree about the block set.
func Splice(doc string, blocks map[string]string) (string, error) {
	names := make([]string, 0, len(blocks))
	for name := range blocks {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		begin := fmt.Sprintf(beginFmt, name)
		end := fmt.Sprintf(endFmt, name)
		bi := strings.Index(doc, begin)
		ei := strings.Index(doc, end)
		if bi < 0 || ei < 0 {
			return "", fmt.Errorf("paperbench: document is missing the %q marker block", name)
		}
		if ei < bi {
			return "", fmt.Errorf("paperbench: %q end marker precedes its begin marker", name)
		}
		doc = doc[:bi+len(begin)] + "\n" + blocks[name] + doc[ei:]
	}
	for _, m := range markerNames(doc) {
		if _, ok := blocks[m]; !ok {
			return "", fmt.Errorf("paperbench: document has a %q marker block the generator does not produce", m)
		}
	}
	return doc, nil
}

// markerNames lists the begin-marker names present in a document.
func markerNames(doc string) []string {
	const prefix = "<!-- paperbench:begin "
	var names []string
	for i := strings.Index(doc, prefix); i >= 0; {
		rest := doc[i+len(prefix):]
		j := strings.Index(rest, " -->")
		if j < 0 {
			break
		}
		names = append(names, rest[:j])
		next := strings.Index(rest, prefix)
		if next < 0 {
			break
		}
		i += len(prefix) + next
	}
	return names
}
