package paperbench

import (
	"context"
	"strings"
	"testing"

	"repro/internal/corpus"
	"repro/internal/pipeline"
)

func TestSplice(t *testing.T) {
	doc := "intro\n<!-- paperbench:begin a -->\nstale\n<!-- paperbench:end a -->\ntail\n"
	out, err := Splice(doc, map[string]string{"a": "fresh\n"})
	if err != nil {
		t.Fatal(err)
	}
	want := "intro\n<!-- paperbench:begin a -->\nfresh\n<!-- paperbench:end a -->\ntail\n"
	if out != want {
		t.Fatalf("got:\n%s\nwant:\n%s", out, want)
	}
	// Idempotent: splicing the already-fresh document is a no-op.
	again, err := Splice(out, map[string]string{"a": "fresh\n"})
	if err != nil || again != out {
		t.Fatalf("not idempotent: %v\n%s", err, again)
	}
}

func TestSpliceErrors(t *testing.T) {
	if _, err := Splice("no markers", map[string]string{"a": "x\n"}); err == nil {
		t.Fatal("accepted a document without the block")
	}
	doc := "<!-- paperbench:end a -->\n<!-- paperbench:begin a -->\n"
	if _, err := Splice(doc, map[string]string{"a": "x\n"}); err == nil {
		t.Fatal("accepted reversed markers")
	}
	orphan := "<!-- paperbench:begin a -->\n<!-- paperbench:end a -->\n<!-- paperbench:begin zzz -->\n<!-- paperbench:end zzz -->\n"
	if _, err := Splice(orphan, map[string]string{"a": "x\n"}); err == nil {
		t.Fatal("accepted a document with a block the generator does not produce")
	}
}

// A tiny matrix run: two machines, one strategy, and every table renderer.
func TestMatrixAndTables(t *testing.T) {
	machines, err := corpus.Load("../../testdata/corpus")
	if err != nil {
		t.Fatal(err)
	}
	machines = machines[:2]
	strategies := []pipeline.Strategy{pipeline.Nova}
	results, err := RunMatrix(context.Background(), machines, Options{Strategies: strategies, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 || results[0].Machine.Name != machines[0].Name {
		t.Fatalf("results out of order: %+v", results)
	}
	blocks := Blocks(machines, results, strategies)
	for _, name := range []string{"corpus", "encoding", "cubes", "literals", "replay"} {
		tbl, ok := blocks[name]
		if !ok {
			t.Fatalf("missing block %q", name)
		}
		for _, m := range machines {
			if !strings.Contains(tbl, "| "+m.Name+" |") {
				t.Fatalf("block %q has no row for %s:\n%s", name, m.Name, tbl)
			}
		}
	}
	if !strings.Contains(blocks["cubes"], "**total**") {
		t.Fatal("cubes table has no totals row")
	}
	if strings.Contains(blocks["replay"], "FAIL") {
		t.Fatalf("replay table reports a failure:\n%s", blocks["replay"])
	}
}

// RunMatrix results must not depend on the worker count (the tables are
// committed; a scheduling dependence would break byte-identical
// regeneration).
func TestMatrixWorkerInvariance(t *testing.T) {
	machines, err := corpus.Load("../../testdata/corpus")
	if err != nil {
		t.Fatal(err)
	}
	machines = machines[:3]
	strategies := []pipeline.Strategy{pipeline.Heuristic, pipeline.Nova}
	r1, err := RunMatrix(context.Background(), machines, Options{Strategies: strategies, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	r8, err := RunMatrix(context.Background(), machines, Options{Strategies: strategies, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	b1 := Blocks(machines, r1, strategies)
	b8 := Blocks(machines, r8, strategies)
	for name := range b1 {
		if b1[name] != b8[name] {
			t.Fatalf("block %q differs between 1 and 8 workers:\n%s\n----\n%s", name, b1[name], b8[name])
		}
	}
}
