// Package profiling wires the conventional -cpuprofile / -memprofile flags
// into the command-line tools. Both flags are registered on the standard
// flag set at init, so any main that imports this package and calls
// flag.Parse gets them for free:
//
//	encode -cpuprofile cpu.out -bits 4 big.con
//	go tool pprof cpu.out
package profiling

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

var (
	cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile = flag.String("memprofile", "", "write a heap profile to this file on exit")

	cpuFile *os.File
)

// Start begins CPU profiling when -cpuprofile was given. Call it after
// flag.Parse; it returns an error instead of exiting so the caller's fatal
// path stays in control.
func Start() error {
	if *cpuprofile == "" {
		return nil
	}
	f, err := os.Create(*cpuprofile)
	if err != nil {
		return err
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return err
	}
	cpuFile = f
	return nil
}

// Stop flushes the requested profiles. It is idempotent and safe to call
// when profiling never started; commands invoke it both on the normal exit
// path (deferred) and from their fatal helpers, so profiles are written
// even on error exits.
func Stop() {
	if cpuFile != nil {
		pprof.StopCPUProfile()
		cpuFile.Close()
		cpuFile = nil
	}
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "memprofile:", err)
			return
		}
		runtime.GC() // get up-to-date live-object statistics
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "memprofile:", err)
		}
		f.Close()
		*memprofile = ""
	}
}
