package espresso

// Sharp computes a ∖ b as a cover of at most n cubes (the disjoint sharp):
// for each variable where b constrains a, one cube keeps a's literals and
// fixes that variable to the half outside b.
func Sharp(n int, a, b Cube) []Cube {
	if !a.Intersects(n, b) {
		return []Cube{a}
	}
	if b.Contains(a) {
		return nil
	}
	var out []Cube
	cur := a
	for v := 0; v < n; v++ {
		bit := uint64(1) << uint(v)
		// The part of cur with variable v outside b's allowed values.
		keepZ := cur.Z&bit != 0 && b.Z&bit == 0 // cur allows 0, b forbids 0
		keepO := cur.O&bit != 0 && b.O&bit == 0
		if keepZ {
			c := cur
			c.O &^= bit // restrict to v=0
			out = append(out, c)
		}
		if keepO {
			c := cur
			c.Z &^= bit
			out = append(out, c)
		}
		if keepZ || keepO {
			// Continue in the half that overlaps b.
			cur = Cube{Z: cur.Z & ^uint64(0), O: cur.O}
			if keepZ {
				cur.Z &^= bit
			}
			if keepO {
				cur.O &^= bit
			}
		}
	}
	return out
}

// Consensus returns the consensus of a and b and true when it exists:
// for cubes at distance exactly one, the cube agreeing with both in the
// conflicting variable's complement-free positions.
func Consensus(n int, a, b Cube) (Cube, bool) {
	if a.Distance(n, b) != 1 {
		return Cube{}, false
	}
	// The conflicting variable becomes free; all others intersect.
	free := (a.Z & b.Z) | (a.O & b.O)
	conflict := ^free & mask(n)
	c := a.Intersect(b)
	c.Z |= conflict
	c.O |= conflict
	return c, true
}

// CoverSharp subtracts cube b from every cube of f, returning a cover of
// f ∖ b.
func CoverSharp(f *Cover, b Cube) *Cover {
	out := NewCover(f.N)
	for _, c := range f.Cubes {
		for _, r := range Sharp(f.N, c, b) {
			out.Add(r)
		}
	}
	out.SCC()
	return out
}
