package espresso

import (
	"math/rand"
	"testing"
)

// TestSharpExhaustive checks a ∖ b point-wise on random cubes.
func TestSharpExhaustive(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	randCube := func(n int) Cube {
		var c Cube
		for v := 0; v < n; v++ {
			switch rng.Intn(3) {
			case 0:
				c.Z |= 1 << uint(v)
			case 1:
				c.O |= 1 << uint(v)
			default:
				c.Z |= 1 << uint(v)
				c.O |= 1 << uint(v)
			}
		}
		return c
	}
	for trial := 0; trial < 500; trial++ {
		n := 2 + rng.Intn(4)
		a, b := randCube(n), randCube(n)
		if a.IsEmpty(n) || b.IsEmpty(n) {
			continue
		}
		pieces := Sharp(n, a, b)
		for m := uint64(0); m < 1<<uint(n); m++ {
			want := a.ContainsMinterm(n, m) && !b.ContainsMinterm(n, m)
			got := false
			for _, p := range pieces {
				if p.ContainsMinterm(n, m) {
					got = true
				}
			}
			if got != want {
				t.Fatalf("trial %d: sharp(%s, %s) wrong at %0*b (pieces %v)",
					trial, a.String(n), b.String(n), n, m, pieces)
			}
		}
		// The sharp pieces must be pairwise disjoint.
		for i := range pieces {
			for j := i + 1; j < len(pieces); j++ {
				if pieces[i].Intersects(n, pieces[j]) {
					t.Fatalf("trial %d: sharp pieces overlap", trial)
				}
			}
		}
	}
}

func TestConsensus(t *testing.T) {
	n := 3
	a, b := ParseCube("01-"), ParseCube("11-")
	c, ok := Consensus(n, a, b)
	if !ok {
		t.Fatal("distance-1 cubes have a consensus")
	}
	if got := c.String(n); got != "-1-" {
		t.Fatalf("consensus = %q, want -1-", got)
	}
	if _, ok := Consensus(n, ParseCube("00-"), ParseCube("11-")); ok {
		t.Fatal("distance-2 cubes have no consensus")
	}
	if _, ok := Consensus(n, ParseCube("0--"), ParseCube("01-")); ok {
		t.Fatal("intersecting cubes (distance 0) have no consensus here")
	}
}

// TestConsensusCoversBoundary: the consensus contains every minterm pair
// boundary between a and b.
func TestConsensusCoversBoundary(t *testing.T) {
	rng := rand.New(rand.NewSource(107))
	for trial := 0; trial < 300; trial++ {
		n := 2 + rng.Intn(3)
		// Construct two cubes at distance exactly 1 by splitting a parent.
		var parent Cube
		for v := 0; v < n; v++ {
			switch rng.Intn(2) {
			case 0:
				parent.Z |= 1 << uint(v)
				parent.O |= 1 << uint(v)
			default:
				if rng.Intn(2) == 0 {
					parent.Z |= 1 << uint(v)
				} else {
					parent.O |= 1 << uint(v)
				}
			}
		}
		// Pick a free variable to split on.
		freeVars := parent.Z & parent.O & mask(n)
		if freeVars == 0 {
			continue
		}
		var v int
		for v = 0; v < n; v++ {
			if freeVars&(1<<uint(v)) != 0 {
				break
			}
		}
		bit := uint64(1) << uint(v)
		a := Cube{Z: parent.Z, O: parent.O &^ bit}
		b := Cube{Z: parent.Z &^ bit, O: parent.O}
		c, ok := Consensus(n, a, b)
		if !ok {
			t.Fatalf("trial %d: split halves must have a consensus", trial)
		}
		if c != parent {
			t.Fatalf("trial %d: consensus of split halves is the parent: got %s want %s",
				trial, c.String(n), parent.String(n))
		}
	}
}

func TestCoverSharp(t *testing.T) {
	f := NewCover(2)
	f.Add(Universe(2))
	g := CoverSharp(f, ParseCube("11"))
	// Universe minus one minterm = 3 minterms.
	count := 0
	for m := uint64(0); m < 4; m++ {
		if g.ContainsMinterm(m) {
			count++
		}
	}
	if count != 3 || g.ContainsMinterm(0b11) {
		t.Fatalf("cover sharp wrong:\n%s", g)
	}
}
