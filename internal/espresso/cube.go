// Package espresso implements a compact two-level logic minimizer in the
// style of ESPRESSO (expand / irredundant / reduce over cube covers),
// sufficient for the paper's cost-function evaluation (Section 7, Figure 9)
// and the encoded-PLA back-end. Functions are limited to 64 binary inputs,
// far beyond any encoding produced here.
package espresso

import (
	"math/bits"
	"strings"
)

// Cube is a product term over N binary variables in positional notation:
// for variable v, bit v of Z means "v may be 0" and bit v of O means "v may
// be 1". A variable with both bits set is absent from the product (don't
// care); a variable with neither bit set makes the cube empty.
type Cube struct {
	Z, O uint64
}

// Cover is a set of cubes over a fixed variable count.
type Cover struct {
	N     int
	Cubes []Cube
}

// Universe returns the cube covering the whole space of n variables.
func Universe(n int) Cube {
	m := mask(n)
	return Cube{Z: m, O: m}
}

func mask(n int) uint64 {
	if n >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << uint(n)) - 1
}

// MintermCube returns the 0-dimensional cube of the given minterm.
func MintermCube(n int, m uint64) Cube {
	return Cube{Z: ^m & mask(n), O: m & mask(n)}
}

// IsEmpty reports whether the cube contains no minterm of an n-variable
// space.
func (c Cube) IsEmpty(n int) bool {
	return (c.Z|c.O)&mask(n) != mask(n)
}

// Contains reports whether d ⊆ c.
func (c Cube) Contains(d Cube) bool {
	return d.Z&^c.Z == 0 && d.O&^c.O == 0
}

// ContainsMinterm reports whether minterm m lies in the cube.
func (c Cube) ContainsMinterm(n int, m uint64) bool {
	return c.Contains(MintermCube(n, m))
}

// Intersect returns c ∩ d; the result may be empty.
func (c Cube) Intersect(d Cube) Cube {
	return Cube{Z: c.Z & d.Z, O: c.O & d.O}
}

// Intersects reports whether c ∩ d is non-empty in an n-variable space.
func (c Cube) Intersects(n int, d Cube) bool {
	return !c.Intersect(d).IsEmpty(n)
}

// Supercube returns the smallest cube containing both c and d.
func (c Cube) Supercube(d Cube) Cube {
	return Cube{Z: c.Z | d.Z, O: c.O | d.O}
}

// Distance returns the number of variables in which c and d have empty
// intersection.
func (c Cube) Distance(n int, d Cube) int {
	free := (c.Z & d.Z) | (c.O & d.O)
	return bits.OnesCount64(^free & mask(n))
}

// Literals returns the number of literals of the cube: variables not don't
// care.
func (c Cube) Literals(n int) int {
	dc := c.Z & c.O & mask(n)
	return n - bits.OnesCount64(dc)
}

// Cofactor returns the Shannon cofactor of c with respect to cube d
// (the espresso cofactor): variables fixed by d become don't-care in the
// result. The second result is false when c does not intersect d.
func (c Cube) Cofactor(n int, d Cube) (Cube, bool) {
	if !c.Intersects(n, d) {
		return Cube{}, false
	}
	m := mask(n)
	return Cube{Z: (c.Z | ^d.Z) & m, O: (c.O | ^d.O) & m}, true
}

// String renders the cube in PLA notation: one character per variable,
// '0', '1' or '-' ('~' for empty positions), variable 0 first.
func (c Cube) String(n int) string {
	var b strings.Builder
	for v := 0; v < n; v++ {
		z := c.Z&(1<<uint(v)) != 0
		o := c.O&(1<<uint(v)) != 0
		switch {
		case z && o:
			b.WriteByte('-')
		case o:
			b.WriteByte('1')
		case z:
			b.WriteByte('0')
		default:
			b.WriteByte('~')
		}
	}
	return b.String()
}

// ParseCube parses PLA notation produced by String.
func ParseCube(s string) Cube {
	var c Cube
	for v := 0; v < len(s); v++ {
		switch s[v] {
		case '0':
			c.Z |= 1 << uint(v)
		case '1':
			c.O |= 1 << uint(v)
		case '-':
			c.Z |= 1 << uint(v)
			c.O |= 1 << uint(v)
		}
	}
	return c
}

// NewCover returns an empty cover over n variables.
func NewCover(n int) *Cover {
	return &Cover{N: n}
}

// Add appends a cube, dropping empty ones.
func (f *Cover) Add(c Cube) {
	if !c.IsEmpty(f.N) {
		f.Cubes = append(f.Cubes, c)
	}
}

// Clone returns a copy of the cover.
func (f *Cover) Clone() *Cover {
	g := &Cover{N: f.N, Cubes: make([]Cube, len(f.Cubes))}
	copy(g.Cubes, f.Cubes)
	return g
}

// Size returns the number of cubes.
func (f *Cover) Size() int { return len(f.Cubes) }

// Literals returns the total literal count of the cover.
func (f *Cover) Literals() int {
	total := 0
	for _, c := range f.Cubes {
		total += c.Literals(f.N)
	}
	return total
}

// ContainsMinterm reports whether some cube of the cover contains m.
func (f *Cover) ContainsMinterm(m uint64) bool {
	mc := MintermCube(f.N, m)
	for _, c := range f.Cubes {
		if c.Contains(mc) {
			return true
		}
	}
	return false
}

// SCC performs single-cube containment: cubes contained in another single
// cube are removed.
func (f *Cover) SCC() {
	var kept []Cube
outer:
	for i, c := range f.Cubes {
		if c.IsEmpty(f.N) {
			continue
		}
		for j, d := range f.Cubes {
			if i == j || d.IsEmpty(f.N) {
				continue
			}
			if d.Contains(c) && (!c.Contains(d) || j < i) {
				continue outer
			}
		}
		kept = append(kept, c)
	}
	f.Cubes = kept
}

// String renders the cover one cube per line.
func (f *Cover) String() string {
	var b strings.Builder
	for _, c := range f.Cubes {
		b.WriteString(c.String(f.N))
		b.WriteByte('\n')
	}
	return b.String()
}
