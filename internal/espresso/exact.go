package espresso

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/cover"
	"repro/internal/trace"
)

// Primes returns all prime implicants of the function whose on-set is f
// and don't-care set dc (nil allowed), by Quine–McCluskey merging over the
// care+dc minterms. Limited to 16 variables.
func Primes(f, dc *Cover) ([]Cube, error) {
	n := f.N
	if n > 16 {
		return nil, fmt.Errorf("espresso: Primes limited to 16 variables, got %d", n)
	}
	// Collect care ∪ dc minterms.
	inSet := map[uint64]bool{}
	for m := uint64(0); m < 1<<uint(n); m++ {
		if f.ContainsMinterm(m) || (dc != nil && dc.ContainsMinterm(m)) {
			inSet[m] = true
		}
	}
	if len(inSet) == 0 {
		return nil, nil
	}
	level := map[Cube]bool{}
	for m := range inSet {
		level[MintermCube(n, m)] = true
	}
	primes := map[Cube]bool{}
	for len(level) > 0 {
		next := map[Cube]bool{}
		merged := map[Cube]bool{}
		cubes := make([]Cube, 0, len(level))
		for c := range level {
			cubes = append(cubes, c)
		}
		for i := 0; i < len(cubes); i++ {
			for j := i + 1; j < len(cubes); j++ {
				a, b := cubes[i], cubes[j]
				if a.Distance(n, b) != 1 {
					continue
				}
				sc := a.Supercube(b)
				// Valid merge only when the supercube introduces no new
				// minterms (distance-1 cubes of equal size always qualify;
				// unequal sizes may not).
				if countMinterms(n, sc) == countMinterms(n, a)+countMinterms(n, b) {
					next[sc] = true
					merged[a] = true
					merged[b] = true
				}
			}
		}
		for c := range level {
			if !merged[c] {
				primes[c] = true
			}
		}
		level = next
	}
	var out []Cube
	for c := range primes {
		out = append(out, c)
	}
	// Drop primes contained in other primes (can arise across levels).
	tmp := &Cover{N: n, Cubes: out}
	tmp.SCC()
	out = tmp.Cubes
	sort.Slice(out, func(i, j int) bool {
		if out[i].Z != out[j].Z {
			return out[i].Z < out[j].Z
		}
		return out[i].O < out[j].O
	})
	return out, nil
}

func countMinterms(n int, c Cube) int {
	dc := c.Z & c.O & mask(n)
	count := 1
	for b := dc; b != 0; b &= b - 1 {
		count <<= 1
	}
	if c.IsEmpty(n) {
		return 0
	}
	return count
}

// MinimizeExactCtx computes a minimum-cube cover of the on-set f with
// don't-cares dc, by prime generation and exact unate covering
// (Quine–McCluskey). Exponential; intended as ground truth for the
// espresso-lite heuristic on small functions. The context is threaded
// into the covering solve (anytime: cancellation yields the incumbent
// cover). When the context carries a trace recorder
// (internal/trace) the prime-implicant stage records an "espresso.primes"
// span; the covering stage records its own "cover.solve" span.
func MinimizeExactCtx(ctx context.Context, f, dc *Cover, opts cover.Options) (*Cover, error) {
	n := f.N
	sp := trace.StartSpan(ctx, "espresso.primes")
	primes, err := Primes(f, dc)
	sp.Set("vars", n).Set("primes", len(primes)).End()
	if err != nil {
		return nil, err
	}
	if len(primes) == 0 {
		return NewCover(n), nil
	}
	// Rows: care on-set minterms. Columns: primes.
	var careMinterms []uint64
	for m := uint64(0); m < 1<<uint(n); m++ {
		if f.ContainsMinterm(m) {
			careMinterms = append(careMinterms, m)
		}
	}
	p := cover.Problem{NumCols: len(primes), RowCols: make([][]int, len(careMinterms))}
	for ri, m := range careMinterms {
		for ci, c := range primes {
			if c.ContainsMinterm(n, m) {
				p.RowCols[ri] = append(p.RowCols[ri], ci)
			}
		}
	}
	sol, err := p.SolveExactCtx(ctx, opts)
	if err != nil {
		return nil, err
	}
	out := NewCover(n)
	for _, ci := range sol.Cols {
		out.Add(primes[ci])
	}
	return out, nil
}

// EssentialPrimes returns the primes covering some care minterm no other
// prime covers; they belong to every minimum cover.
func EssentialPrimes(f, dc *Cover) ([]Cube, error) {
	primes, err := Primes(f, dc)
	if err != nil {
		return nil, err
	}
	var out []Cube
	for m := uint64(0); m < 1<<uint(f.N); m++ {
		if !f.ContainsMinterm(m) {
			continue
		}
		owner := -1
		unique := true
		for ci, c := range primes {
			if c.ContainsMinterm(f.N, m) {
				if owner >= 0 {
					unique = false
					break
				}
				owner = ci
			}
		}
		if unique && owner >= 0 {
			out = append(out, primes[owner])
		}
	}
	// Deduplicate.
	tmp := map[Cube]bool{}
	var dedup []Cube
	for _, c := range out {
		if !tmp[c] {
			tmp[c] = true
			dedup = append(dedup, c)
		}
	}
	return dedup, nil
}
