package espresso_test

import (
	"fmt"

	"repro/internal/espresso"
)

// ExampleMinimize minimizes the minterms of a face: four points of a
// 4-cube collapse to a single 2-literal product.
func ExampleMinimize() {
	f := espresso.FromMinterms(4, []uint64{0b0010, 0b0110, 0b1010, 0b1110})
	g := espresso.Minimize(f, nil, nil)
	fmt.Println(g.Size(), "cube(s):")
	fmt.Print(g)
	// Output:
	// 1 cube(s):
	// 01--
}

// ExampleCover_Tautology checks whether a cover fills the whole space.
func ExampleCover_Tautology() {
	f := espresso.NewCover(3)
	f.Add(espresso.ParseCube("0--"))
	f.Add(espresso.ParseCube("1--"))
	fmt.Println(f.Tautology())
	// Output:
	// true
}

// ExampleCover_Complement complements a single product term.
func ExampleCover_Complement() {
	f := espresso.NewCover(2)
	f.Add(espresso.ParseCube("11"))
	g := f.Complement()
	fmt.Println(g.Size(), "cubes cover the complement")
	// Output:
	// 2 cubes cover the complement
}
