package espresso

import "sort"

// Tautology reports whether the cover equals the whole space, by unate
// reduction and Shannon splitting on the most binate variable.
func (f *Cover) Tautology() bool {
	return tautRec(f.N, f.Cubes)
}

func tautRec(n int, cubes []Cube) bool {
	full := mask(n)
	orZ, orO := uint64(0), uint64(0)
	for _, c := range cubes {
		if c.Z&full == full && c.O&full == full {
			return true
		}
		orZ |= ^c.Z & c.O // variables appearing as positive literal
		orO |= ^c.O & c.Z // variables appearing as negative literal
	}
	if len(cubes) == 0 {
		return false
	}
	// Unate test: a variable is binate if it appears in both phases.
	binate := orZ & orO & full
	if binate == 0 {
		// Unate cover is a tautology iff it contains the universe cube,
		// already checked above.
		return false
	}
	// Split on the most frequent binate variable.
	best, bestCount := -1, -1
	for v := 0; v < n; v++ {
		b := uint64(1) << uint(v)
		if binate&b == 0 {
			continue
		}
		count := 0
		for _, c := range cubes {
			if c.Z&b == 0 || c.O&b == 0 {
				count++
			}
		}
		if count > bestCount {
			best, bestCount = v, count
		}
	}
	b := uint64(1) << uint(best)
	var c0, c1 []Cube
	for _, c := range cubes {
		if c.Z&b != 0 { // cube admits v=0
			c0 = append(c0, Cube{Z: c.Z | b, O: c.O | b})
		}
		if c.O&b != 0 { // cube admits v=1
			c1 = append(c1, Cube{Z: c.Z | b, O: c.O | b})
		}
	}
	return tautRec(n, c0) && tautRec(n, c1)
}

// CoversCube reports whether cube c is contained in the union of the cover.
func (f *Cover) CoversCube(c Cube) bool {
	var cof []Cube
	for _, d := range f.Cubes {
		if r, ok := d.Cofactor(f.N, c); ok {
			cof = append(cof, r)
		}
	}
	return tautRec(f.N, cof)
}

// Complement returns a cover of the complement of f, by Shannon recursion
// with single-cube-containment cleanup.
func (f *Cover) Complement() *Cover {
	out := &Cover{N: f.N, Cubes: complRec(f.N, f.Cubes, Universe(f.N))}
	out.SCC()
	return out
}

// complRec returns cubes covering space ∩ ¬(∪cubes), where cubes are given
// cofactored against space.
func complRec(n int, cubes []Cube, space Cube) []Cube {
	if len(cubes) == 0 {
		return []Cube{space}
	}
	full := mask(n)
	for _, c := range cubes {
		if c.Z&full == full && c.O&full == full {
			return nil
		}
	}
	// Select the most frequently constrained variable.
	best, bestCount := -1, -1
	for v := 0; v < n; v++ {
		b := uint64(1) << uint(v)
		if space.Z&b == 0 || space.O&b == 0 {
			continue // already fixed by space
		}
		count := 0
		for _, c := range cubes {
			if c.Z&b == 0 || c.O&b == 0 {
				count++
			}
		}
		if count > bestCount {
			best, bestCount = v, count
		}
	}
	if best < 0 || bestCount == 0 {
		// All cubes are full don't-care over the free variables of space —
		// they cover space entirely (none was the universe, but within
		// space's free vars they are unconstrained).
		return nil
	}
	b := uint64(1) << uint(best)
	half := func(keepZ bool) []Cube {
		var sub []Cube
		for _, c := range cubes {
			if keepZ && c.Z&b != 0 {
				sub = append(sub, Cube{Z: c.Z | b, O: c.O | b})
			}
			if !keepZ && c.O&b != 0 {
				sub = append(sub, Cube{Z: c.Z | b, O: c.O | b})
			}
		}
		return sub
	}
	sp0 := Cube{Z: space.Z, O: space.O &^ b}
	sp1 := Cube{Z: space.Z &^ b, O: space.O}
	return append(complRec(n, half(true), sp0), complRec(n, half(false), sp1)...)
}

// Expand enlarges each cube of f against the blocking cover off (the
// off-set). Two mechanisms are combined, approximating espresso's
// coverage-directed expansion: first, pairs of cubes whose supercube is
// disjoint from off are merged (this recovers whole faces from their
// minterms in one step); then each cube's literals are raised greedily,
// most-easily-raised first, while the cube stays disjoint from off.
// Expanded cubes that cover earlier ones subsume them via SCC.
func (f *Cover) Expand(off *Cover) {
	f.mergeSupercubes(off)
	for i := range f.Cubes {
		f.Cubes[i] = expandCube(f.N, f.Cubes[i], off)
	}
	f.SCC()
}

// mergeSupercubes repeatedly replaces pairs of cubes by their supercube
// whenever the supercube does not intersect the off-set.
func (f *Cover) mergeSupercubes(off *Cover) {
	for {
		merged := false
		for i := 0; i < len(f.Cubes) && !merged; i++ {
			for j := i + 1; j < len(f.Cubes); j++ {
				sc := f.Cubes[i].Supercube(f.Cubes[j])
				ok := true
				for _, o := range off.Cubes {
					if sc.Intersects(f.N, o) {
						ok = false
						break
					}
				}
				if ok {
					f.Cubes[i] = sc
					f.Cubes = append(f.Cubes[:j], f.Cubes[j+1:]...)
					merged = true
					break
				}
			}
		}
		if !merged {
			return
		}
	}
}

func expandCube(n int, c Cube, off *Cover) Cube {
	type cand struct{ v, blockers int }
	var cands []cand
	for v := 0; v < n; v++ {
		b := uint64(1) << uint(v)
		if c.Z&b != 0 && c.O&b != 0 {
			continue // already free
		}
		raised := Cube{Z: c.Z | b, O: c.O | b}
		blockers := 0
		for _, o := range off.Cubes {
			if raised.Intersects(n, o) {
				blockers++
			}
		}
		cands = append(cands, cand{v, blockers})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].blockers != cands[j].blockers {
			return cands[i].blockers < cands[j].blockers
		}
		return cands[i].v < cands[j].v
	})
	for _, cd := range cands {
		b := uint64(1) << uint(cd.v)
		raised := Cube{Z: c.Z | b, O: c.O | b}
		ok := true
		for _, o := range off.Cubes {
			if raised.Intersects(n, o) {
				ok = false
				break
			}
		}
		if ok {
			c = raised
		}
	}
	return c
}

// Irredundant removes cubes covered by the union of the remaining cubes
// and the don't-care cover dc (may be nil).
func (f *Cover) Irredundant(dc *Cover) {
	// Try removing the largest cubes last: removing small cubes first
	// preserves the expanded primes.
	order := make([]int, len(f.Cubes))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		return f.Cubes[order[a]].Literals(f.N) > f.Cubes[order[b]].Literals(f.N)
	})
	removed := make([]bool, len(f.Cubes))
	for _, i := range order {
		rest := &Cover{N: f.N}
		for j, c := range f.Cubes {
			if j != i && !removed[j] {
				rest.Cubes = append(rest.Cubes, c)
			}
		}
		if dc != nil {
			rest.Cubes = append(rest.Cubes, dc.Cubes...)
		}
		if rest.CoversCube(f.Cubes[i]) {
			removed[i] = true
		}
	}
	var kept []Cube
	for i, c := range f.Cubes {
		if !removed[i] {
			kept = append(kept, c)
		}
	}
	f.Cubes = kept
}

// Reduce shrinks each cube to the smallest cube covering the minterms it
// alone covers (relative to the rest of the cover plus dc), enabling the
// next expansion to escape local minima.
func (f *Cover) Reduce(dc *Cover) {
	for i := range f.Cubes {
		rest := &Cover{N: f.N}
		for j, c := range f.Cubes {
			if j != i {
				rest.Cubes = append(rest.Cubes, c)
			}
		}
		if dc != nil {
			rest.Cubes = append(rest.Cubes, dc.Cubes...)
		}
		f.Cubes[i] = reduceCube(f.N, f.Cubes[i], rest)
	}
	var kept []Cube
	for _, c := range f.Cubes {
		if !c.IsEmpty(f.N) {
			kept = append(kept, c)
		}
	}
	f.Cubes = kept
}

// reduceCube returns the supercube of c ∖ rest.
func reduceCube(n int, c Cube, rest *Cover) Cube {
	var cof []Cube
	for _, d := range rest.Cubes {
		if r, ok := d.Cofactor(n, c); ok {
			cof = append(cof, r)
		}
	}
	remainder := complRec(n, cof, Universe(n))
	if len(remainder) == 0 {
		return Cube{} // fully covered by the rest
	}
	sc := remainder[0]
	for _, r := range remainder[1:] {
		sc = sc.Supercube(r)
	}
	return c.Intersect(sc)
}

// Minimize runs the espresso loop on the on-set f with don't-care set dc
// (nil allowed) and returns a minimized cover. The off-set is computed by
// complementation unless provided via off (pass nil to compute).
func Minimize(f, dc, off *Cover) *Cover {
	g := f.Clone()
	g.SCC()
	if len(g.Cubes) == 0 {
		return g
	}
	if off == nil {
		onDC := g.Clone()
		if dc != nil {
			onDC.Cubes = append(onDC.Cubes, dc.Cubes...)
		}
		off = onDC.Complement()
	}
	best := g.Clone()
	cost := func(c *Cover) (int, int) { return c.Size(), c.Literals() }
	bc, bl := cost(best)
	for iter := 0; iter < 4; iter++ {
		g.Expand(off)
		g.Irredundant(dc)
		c, l := cost(g)
		if c < bc || (c == bc && l < bl) {
			best = g.Clone()
			bc, bl = c, l
		} else if iter > 0 {
			break
		}
		g.Reduce(dc)
	}
	return best
}

// FromMinterms builds a cover of the given minterms over n variables.
func FromMinterms(n int, ms []uint64) *Cover {
	f := NewCover(n)
	for _, m := range ms {
		f.Add(MintermCube(n, m))
	}
	return f
}

// Equivalent reports whether covers f and g agree on every minterm outside
// the don't-care set dc (nil means none). Exhaustive over 2^n minterms;
// intended for testing with small n.
func Equivalent(f, g, dc *Cover) bool {
	n := f.N
	if n > 24 {
		panic("espresso: Equivalent limited to 24 variables")
	}
	for m := uint64(0); m < 1<<uint(n); m++ {
		if dc != nil && dc.ContainsMinterm(m) {
			continue
		}
		if f.ContainsMinterm(m) != g.ContainsMinterm(m) {
			return false
		}
	}
	return true
}
