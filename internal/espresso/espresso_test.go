package espresso

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCubeBasics(t *testing.T) {
	n := 4
	u := Universe(n)
	if u.IsEmpty(n) {
		t.Fatal("universe must be non-empty")
	}
	if u.Literals(n) != 0 {
		t.Fatalf("universe has 0 literals, got %d", u.Literals(n))
	}
	m := MintermCube(n, 0b1010)
	if m.Literals(n) != 4 {
		t.Fatalf("minterm has 4 literals, got %d", m.Literals(n))
	}
	if !u.Contains(m) {
		t.Fatal("universe must contain every minterm")
	}
	if m.Contains(u) {
		t.Fatal("minterm must not contain the universe")
	}
	if got := m.String(n); got != "0101" {
		t.Fatalf("minterm 1010 renders per-variable as 0101 (v0 first), got %q", got)
	}
	if ParseCube("01-1") != (Cube{Z: 0b0101, O: 0b1110}) {
		t.Fatalf("ParseCube wrong: %+v", ParseCube("01-1"))
	}
}

func TestCubeIntersectDistance(t *testing.T) {
	n := 3
	a := ParseCube("0--")
	b := ParseCube("1--")
	if a.Intersects(n, b) {
		t.Fatal("0-- and 1-- must not intersect")
	}
	if d := a.Distance(n, b); d != 1 {
		t.Fatalf("distance 1 expected, got %d", d)
	}
	c := ParseCube("-1-")
	if !a.Intersects(n, c) {
		t.Fatal("0-- and -1- must intersect")
	}
	if got := a.Intersect(c).String(n); got != "01-" {
		t.Fatalf("intersection should be 01-, got %q", got)
	}
	if got := a.Supercube(b).String(n); got != "---" {
		t.Fatalf("supercube should be ---, got %q", got)
	}
}

func TestTautology(t *testing.T) {
	n := 3
	f := NewCover(n)
	f.Add(ParseCube("0--"))
	f.Add(ParseCube("1--"))
	if !f.Tautology() {
		t.Fatal("0-- + 1-- is a tautology")
	}
	g := NewCover(n)
	g.Add(ParseCube("0--"))
	g.Add(ParseCube("11-"))
	if g.Tautology() {
		t.Fatal("0-- + 11- misses 10-")
	}
	empty := NewCover(n)
	if empty.Tautology() {
		t.Fatal("empty cover is not a tautology")
	}
}

func TestComplementExhaustive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(4)
		f := NewCover(n)
		k := rng.Intn(5)
		for i := 0; i < k; i++ {
			var c Cube
			for v := 0; v < n; v++ {
				switch rng.Intn(3) {
				case 0:
					c.Z |= 1 << uint(v)
				case 1:
					c.O |= 1 << uint(v)
				default:
					c.Z |= 1 << uint(v)
					c.O |= 1 << uint(v)
				}
			}
			f.Add(c)
		}
		g := f.Complement()
		for m := uint64(0); m < 1<<uint(n); m++ {
			if f.ContainsMinterm(m) == g.ContainsMinterm(m) {
				t.Fatalf("trial %d: complement wrong at minterm %b\nF:\n%sG:\n%s", trial, m, f, g)
			}
		}
	}
}

func TestMinimizeEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 150; trial++ {
		n := 2 + rng.Intn(4)
		var on, dc []uint64
		for m := uint64(0); m < 1<<uint(n); m++ {
			switch rng.Intn(4) {
			case 0:
				on = append(on, m)
			case 1:
				dc = append(dc, m)
			}
		}
		f := FromMinterms(n, on)
		d := FromMinterms(n, dc)
		g := Minimize(f, d, nil)
		// Every on-minterm covered; no off-minterm covered.
		for m := uint64(0); m < 1<<uint(n); m++ {
			inOn := f.ContainsMinterm(m)
			inDC := d.ContainsMinterm(m)
			got := g.ContainsMinterm(m)
			if inOn && !got {
				t.Fatalf("trial %d: minimized cover drops on-minterm %b", trial, m)
			}
			if !inOn && !inDC && got {
				t.Fatalf("trial %d: minimized cover gains off-minterm %b", trial, m)
			}
		}
		if g.Size() > f.Size() {
			t.Fatalf("trial %d: minimization grew the cover %d -> %d", trial, f.Size(), g.Size())
		}
	}
}

func TestMinimizeSingleFace(t *testing.T) {
	// The minterms of a subcube must always minimize to one cube.
	n := 4
	f := FromMinterms(n, []uint64{0b0000, 0b0001, 0b0100, 0b0101}) // face -0-0 over v0..v3? minterms vary v0,v2
	g := Minimize(f, nil, nil)
	if g.Size() != 1 {
		t.Fatalf("face minterms must minimize to a single cube, got %d:\n%s", g.Size(), g)
	}
	if g.Cubes[0].Literals(n) != 2 {
		t.Fatalf("face cube must have 2 literals, got %d", g.Cubes[0].Literals(n))
	}
}

func TestCoversCube(t *testing.T) {
	n := 3
	f := NewCover(n)
	f.Add(ParseCube("0--"))
	f.Add(ParseCube("-0-"))
	if !f.CoversCube(ParseCube("00-")) {
		t.Fatal("00- is inside the union")
	}
	if f.CoversCube(ParseCube("11-")) {
		t.Fatal("11- is outside the union")
	}
	if !f.CoversCube(ParseCube("0--")) {
		t.Fatal("a member cube is covered")
	}
	// A cube straddling both members but fully within the union.
	if !f.CoversCube(ParseCube("-00")) {
		// -00 minterms: 000 (in 0--), 100 (in -0-): covered.
		t.Fatal("-00 is covered by the union")
	}
}

func TestSupercubeProperty(t *testing.T) {
	n := 6
	err := quick.Check(func(z1, o1, z2, o2 uint64) bool {
		m := mask(n)
		a := Cube{Z: z1 & m, O: o1 & m}
		b := Cube{Z: z2 & m, O: o2 & m}
		if a.IsEmpty(n) || b.IsEmpty(n) {
			return true
		}
		sc := a.Supercube(b)
		return sc.Contains(a) && sc.Contains(b)
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestContainmentTransitive(t *testing.T) {
	n := 5
	err := quick.Check(func(raw [3][2]uint64) bool {
		m := mask(n)
		cs := make([]Cube, 3)
		for i, r := range raw {
			cs[i] = Cube{Z: r[0]&m | 1, O: r[1]&m | 1} // keep non-empty in var 0
		}
		a, b, c := cs[0], cs[1], cs[2]
		if a.Contains(b) && b.Contains(c) && !a.Contains(c) {
			return false
		}
		return true
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}
