package espresso

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/cover"
)

func TestPrimesSimple(t *testing.T) {
	// f = v0' + v1 over 2 vars: minterms 00,01,11. Primes: "0-" and "-1".
	f := FromMinterms(2, []uint64{0b00, 0b10, 0b11})
	primes, err := Primes(f, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(primes) != 2 {
		t.Fatalf("want 2 primes, got %v", primes)
	}
	want := map[Cube]bool{ParseCube("0-"): true, ParseCube("-1"): true}
	for _, p := range primes {
		if !want[p] {
			t.Fatalf("unexpected prime %s", p.String(2))
		}
	}
}

func TestPrimesAreMaximalImplicants(t *testing.T) {
	rng := rand.New(rand.NewSource(89))
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.Intn(3)
		var on, dc []uint64
		for m := uint64(0); m < 1<<uint(n); m++ {
			switch rng.Intn(3) {
			case 0:
				on = append(on, m)
			case 1:
				dc = append(dc, m)
			}
		}
		f := FromMinterms(n, on)
		d := FromMinterms(n, dc)
		primes, err := Primes(f, d)
		if err != nil {
			t.Fatal(err)
		}
		inCare := func(m uint64) bool { return f.ContainsMinterm(m) || d.ContainsMinterm(m) }
		for _, p := range primes {
			// Implicant: every covered minterm is on or dc.
			for m := uint64(0); m < 1<<uint(n); m++ {
				if p.ContainsMinterm(n, m) && !inCare(m) {
					t.Fatalf("trial %d: %s covers off-minterm %b", trial, p.String(n), m)
				}
			}
			// Maximal: raising any literal exits the care set.
			for v := 0; v < n; v++ {
				bit := uint64(1) << uint(v)
				if p.Z&bit != 0 && p.O&bit != 0 {
					continue
				}
				raised := Cube{Z: p.Z | bit, O: p.O | bit}
				ok := true
				for m := uint64(0); m < 1<<uint(n); m++ {
					if raised.ContainsMinterm(n, m) && !inCare(m) {
						ok = false
						break
					}
				}
				if ok {
					t.Fatalf("trial %d: prime %s is not maximal (var %d raisable)", trial, p.String(n), v)
				}
			}
		}
	}
}

// TestMinimizeExactIsOptimalAndHeuristicClose compares the QM+covering
// exact minimizer with espresso-lite on random functions: exact must be a
// valid minimum (≤ any equivalent cover we can find) and the heuristic
// must come within one cube of it.
func TestMinimizeExactIsOptimalAndHeuristicClose(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	for trial := 0; trial < 80; trial++ {
		n := 2 + rng.Intn(3)
		var on, dc []uint64
		for m := uint64(0); m < 1<<uint(n); m++ {
			switch rng.Intn(3) {
			case 0:
				on = append(on, m)
			case 1:
				dc = append(dc, m)
			}
		}
		f := FromMinterms(n, on)
		d := FromMinterms(n, dc)
		exact, err := MinimizeExactCtx(context.Background(), f, d, cover.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !Equivalent(f, exact, d) {
			t.Fatalf("trial %d: exact cover not equivalent", trial)
		}
		heur := Minimize(f, d, nil)
		if !Equivalent(f, heur, d) {
			t.Fatalf("trial %d: heuristic cover not equivalent", trial)
		}
		if heur.Size() < exact.Size() {
			t.Fatalf("trial %d: heuristic (%d cubes) beat the 'exact' minimum (%d) — exact is broken",
				trial, heur.Size(), exact.Size())
		}
		if heur.Size() > exact.Size()+1 {
			t.Fatalf("trial %d: heuristic %d cubes vs exact %d", trial, heur.Size(), exact.Size())
		}
	}
}

func TestEssentialPrimes(t *testing.T) {
	// f over 2 vars: minterms 00, 01, 11: primes 0-, -1; minterm 00 only
	// in 0-, minterm 11 only in -1: both essential.
	f := FromMinterms(2, []uint64{0b00, 0b10, 0b11})
	ess, err := EssentialPrimes(f, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(ess) != 2 {
		t.Fatalf("want 2 essential primes, got %v", ess)
	}
}

func TestPrimesEmpty(t *testing.T) {
	f := NewCover(3)
	primes, err := Primes(f, nil)
	if err != nil || len(primes) != 0 {
		t.Fatalf("empty function: %v %v", primes, err)
	}
}

func TestPrimesTooWide(t *testing.T) {
	f := NewCover(20)
	f.Add(Universe(20))
	if _, err := Primes(f, nil); err == nil {
		t.Fatal("20 variables must be rejected")
	}
}
