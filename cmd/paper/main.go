// Command paper regenerates the tables and figures of "A Framework for
// Satisfying Input and Output Encoding Constraints" (Saldanha, Villa,
// Brayton, Sangiovanni-Vincentelli, UCB/ERL M90/110).
//
// Usage:
//
//	paper -figure N        reproduce figure N (1, 3, 4, 8 or 9)
//	paper -table N         reproduce table N (1, 2 or 3)
//	paper -all             everything (tables may take several minutes)
//	paper -bench NAME      restrict a table run to one benchmark
//	paper -quick           shorter budgets for the table runs
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/bench"
)

func main() {
	figure := flag.Int("figure", 0, "figure number to reproduce (1, 3, 4, 8, 9)")
	table := flag.Int("table", 0, "table number to reproduce (1, 2, 3)")
	ablation := flag.Bool("ablation", false, "run the design-choice ablations (prime engines, evaluator cache)")
	all := flag.Bool("all", false, "reproduce every figure and table")
	benchName := flag.String("bench", "", "restrict a table run to one benchmark")
	quick := flag.Bool("quick", false, "use shorter budgets for table runs")
	flag.Parse()

	if !*all && *figure == 0 && *table == 0 && !*ablation {
		flag.Usage()
		os.Exit(2)
	}
	if *ablation {
		out, err := bench.Ablation()
		if err != nil {
			fmt.Fprintln(os.Stderr, "ablation:", err)
			os.Exit(1)
		}
		fmt.Println(out)
		if !*all && *figure == 0 && *table == 0 {
			return
		}
	}

	var names []string
	if *benchName != "" {
		names = []string{*benchName}
	}

	runFigure := func(n int) {
		var out string
		var err error
		switch n {
		case 1:
			out, err = bench.Figure1()
		case 3:
			out, err = bench.Figure3()
		case 4:
			out, err = bench.Figure4()
		case 8:
			out, err = bench.Figure8()
		case 9:
			out, err = bench.Figure9()
		default:
			err = fmt.Errorf("no reproducible figure %d (the paper's figures 2, 5, 6, 7 are pseudo-code listings)", n)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "figure %d: %v\n", n, err)
			os.Exit(1)
		}
		fmt.Println(out)
	}

	runTable := func(n int) {
		switch n {
		case 1:
			opts := bench.Table1Options{Names: names}
			if *quick {
				opts.PrimeTimeout = 10 * time.Second
				opts.CoverTimeout = 5 * time.Second
			}
			fmt.Println("Table 1: exact input and output encoding")
			fmt.Print(bench.FormatTable1(bench.RunTable1(opts)))
		case 2:
			opts := bench.Table2Options{Names: names}
			if *quick {
				opts.MaxEvaluations = 400
			}
			fmt.Println("Table 2: two-level heuristic minimum code length input encoding")
			fmt.Print(bench.FormatTable2(bench.RunTable2(opts)))
		case 3:
			opts := bench.Table3Options{Names: names}
			if *quick {
				opts.Temps = 40
			}
			fmt.Println("Table 3: multi-level heuristic minimum code length input encoding")
			fmt.Print(bench.FormatTable3(bench.RunTable3(opts)))
		default:
			fmt.Fprintf(os.Stderr, "no table %d\n", n)
			os.Exit(1)
		}
	}

	if *all {
		for _, f := range []int{1, 3, 4, 8, 9} {
			runFigure(f)
		}
		for _, t := range []int{1, 2, 3} {
			runTable(t)
			fmt.Println()
		}
		return
	}
	if *figure != 0 {
		runFigure(*figure)
	}
	if *table != 0 {
		runTable(*table)
	}
}
