package main

import (
	"testing"

	"repro/internal/cost"
)

func TestParseMetric(t *testing.T) {
	cases := map[string]cost.Metric{
		"violations": cost.Violations,
		"cubes":      cost.Cubes,
		"literals":   cost.Literals,
	}
	for name, want := range cases {
		got, ok := parseMetric(name)
		if !ok || got != want {
			t.Errorf("parseMetric(%q) = %v, %v", name, got, ok)
		}
	}
	if _, ok := parseMetric("bogus"); ok {
		t.Error("unknown metric must be rejected")
	}
}
