// Command encode solves encoding-constraint problems from the textual
// constraint language (see internal/constraint):
//
//	encode -check file.con          P-1: satisfiability (polynomial check)
//	encode file.con                 P-2: exact minimum-length codes
//	encode -bits 4 -metric cubes f  P-3: bounded-length heuristic encoding
//
// With no file argument, constraints are read from standard input.
//
// With -remote, the same problems are sent to a running served instance
// instead of solved in-process; -async additionally submits the solve as
// a job and long-polls for the result, exercising the service's async
// surface from the command line.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"time"

	"repro/encodingapi"
	"repro/internal/constraint"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/heuristic"
	"repro/internal/par"
	"repro/internal/prime"
	"repro/internal/profiling"
	"repro/internal/trace"
)

func main() {
	check := flag.Bool("check", false, "only decide satisfiability (P-1)")
	bits := flag.Int("bits", 0, "fixed code length: switches to the P-3 heuristic")
	metric := flag.String("metric", "violations", "P-3 cost metric: violations, cubes or literals")
	primeLimit := flag.Int("primes", prime.DefaultLimit, "maximal-compatible limit for the exact encoder")
	timeout := flag.Duration("timeout", time.Minute, "time budget for the exact search")
	jobs := flag.Int("j", 0, "worker count for the parallel engines (0 = all CPUs, 1 = sequential); results are identical for any value")
	verbose := flag.Bool("v", false, "print pipeline details")
	traceFlag := flag.Bool("trace", false, "print a per-stage time table to stderr after solving")
	decompose := flag.Bool("decompose", false, "solve the exact problem by connected-component decomposition")
	backendFlag := flag.String("backend", "", "exact-mode covering backend: bb (branch-and-bound, default) or sat")
	remote := flag.String("remote", "", "solve via a running served instance at this base URL (e.g. http://localhost:8080)")
	async := flag.Bool("async", false, "with -remote: submit as an async job and long-poll for the result")
	apiKey := flag.String("api-key", "", "with -remote: tenant credential sent as the bearer token")
	flag.Parse()
	if err := profiling.Start(); err != nil {
		fatal(err)
	}
	defer profiling.Stop()

	backend, ok := core.ParseBackend(*backendFlag)
	if !ok {
		fatal(fmt.Errorf("unknown backend %q (want bb or sat)", *backendFlag))
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	var rec *trace.Recorder
	if *traceFlag {
		ctx, rec = trace.Start(ctx)
		defer printTrace(rec)
	}

	var in io.Reader = os.Stdin
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}
	text, err := io.ReadAll(in)
	if err != nil {
		fatal(err)
	}

	if *remote != "" {
		runRemote(ctx, remoteOptions{
			baseURL:   *remote,
			apiKey:    *apiKey,
			async:     *async,
			text:      string(text),
			check:     *check,
			bits:      *bits,
			metric:    *metric,
			primes:    *primeLimit,
			timeout:   *timeout,
			workers:   *jobs,
			decompose: *decompose,
			backend:   *backendFlag,
		})
		return
	}
	if *async {
		fatal(fmt.Errorf("-async requires -remote"))
	}

	cs, err := constraint.ParseString(string(text))
	if err != nil {
		fatal(err)
	}

	if *check {
		f := core.CheckFeasibleCtx(ctx, cs)
		if f.Feasible {
			fmt.Println("SATISFIABLE")
			return
		}
		fmt.Println("UNSATISFIABLE")
		for _, d := range f.Uncovered {
			fmt.Printf("uncovered: %s\n", d.Format(cs.Syms))
		}
		printTrace(rec) // os.Exit skips the deferred print
		os.Exit(1)
	}

	if *bits > 0 {
		m, ok := parseMetric(*metric)
		if !ok {
			fatal(fmt.Errorf("unknown metric %q", *metric))
		}
		res, err := heuristic.EncodeCtx(ctx, cs, heuristic.Options{Bits: *bits, Metric: m, Parallelism: par.Workers(*jobs)})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("# bounded-length heuristic, %d bits, metric %s\n", *bits, m)
		fmt.Printf("# violations=%d cubes=%d literals=%d\n",
			res.Cost.Violations, res.Cost.Cubes, res.Cost.Literals)
		fmt.Print(res.Encoding)
		return
	}

	exactOpts := core.ExactOptions{
		Prime:       prime.Options{Limit: *primeLimit},
		Parallelism: par.Parallelism{Workers: *jobs, TimeLimit: *timeout},
		Backend:     backend,
	}
	var res *core.ExactResult
	switch {
	case *decompose:
		exactOpts.Decompose = true
		var err error
		if res, err = encodingapi.ExactEncode(ctx, cs, exactOpts); err != nil {
			fatal(err)
		}
		if *verbose {
			fmt.Printf("# components=%d\n", encodingapi.DecompCount(cs))
		}
	case len(cs.Chains) > 0:
		enc, err := core.SolveWithChains(cs, cs.N())
		if err != nil {
			fatal(err)
		}
		res = &core.ExactResult{Encoding: enc}
	case cs.HasExtensionConstraints():
		var err error
		if res, err = core.ExactEncodeExtendedCtx(ctx, cs, exactOpts); err != nil {
			fatal(err)
		}
	default:
		var err error
		if res, err = core.ExactEncodeCtx(ctx, cs, exactOpts); err != nil {
			fatal(err)
		}
	}
	if *verbose {
		fmt.Printf("# seeds=%d raised=%d primes=%d optimal=%v\n",
			len(res.Seeds), len(res.Raised), len(res.Primes), res.Optimal)
	}
	if v := core.Verify(cs, res.Encoding); len(v) != 0 {
		fatal(fmt.Errorf("internal error: encoding failed verification: %v", v[0]))
	}
	fmt.Printf("# exact minimum-length encoding, %d bits\n", res.Encoding.Bits)
	fmt.Print(res.Encoding)
}

// remoteOptions carries the CLI flags that shape a remote solve.
type remoteOptions struct {
	baseURL, apiKey string
	async           bool
	text            string
	check           bool
	bits            int
	metric          string
	primes          int
	timeout         time.Duration
	workers         int
	decompose       bool
	backend         string
}

// runRemote routes the solve through a served instance. The synchronous
// path is one POST /v1/encode; the async path submits a job and
// long-polls until it is terminal, so arbitrarily slow solves survive
// client-side HTTP timeouts.
func runRemote(ctx context.Context, opt remoteOptions) {
	c := encodingapi.NewClient(opt.baseURL)
	c.APIKey = opt.apiKey
	req := encodingapi.EncodeRequest{
		Constraints: opt.text,
		PrimeLimit:  opt.primes,
		TimeoutMS:   int(opt.timeout / time.Millisecond),
		Workers:     opt.workers,
	}
	switch {
	case opt.check:
		req.Mode = "feasible"
	case opt.bits > 0:
		req.Mode = "heuristic"
		req.Bits = opt.bits
		req.Metric = opt.metric
	default:
		req.Mode = "exact"
		req.Decompose = opt.decompose
		req.Backend = opt.backend
	}

	var res *encodingapi.EncodeResult
	if opt.async {
		job, err := c.Submit(ctx, encodingapi.JobRequest{Encode: &req})
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "encode: job %s submitted, waiting\n", job.ID)
		done, err := c.Wait(ctx, job.ID)
		if err != nil {
			fatal(err)
		}
		if err := done.Err(); err != nil {
			fatal(err)
		}
		res = done.Result
	} else {
		var err error
		if res, err = c.Encode(ctx, req); err != nil {
			fatal(err)
		}
	}

	switch req.Mode {
	case "feasible":
		if res.Feasible {
			fmt.Println("SATISFIABLE")
			return
		}
		fmt.Println("UNSATISFIABLE")
		for _, u := range res.Uncovered {
			fmt.Printf("uncovered: %s\n", u)
		}
		os.Exit(1)
	case "heuristic":
		fmt.Printf("# bounded-length heuristic, %d bits, metric %s\n", res.Bits, opt.metric)
		if res.Cost != nil {
			fmt.Printf("# violations=%d cubes=%d literals=%d\n",
				res.Cost.Violations, res.Cost.Cubes, res.Cost.Literals)
		}
		fmt.Print(res.Text)
	default:
		fmt.Printf("# exact minimum-length encoding, %d bits\n", res.Bits)
		fmt.Print(res.Text)
	}
}

func parseMetric(s string) (cost.Metric, bool) {
	switch s {
	case "violations":
		return cost.Violations, true
	case "cubes":
		return cost.Cubes, true
	case "literals":
		return cost.Literals, true
	}
	return 0, false
}

// printTrace renders the recorded stage-time table on stderr, keeping
// stdout clean for the encoding itself.
func printTrace(rec *trace.Recorder) {
	if rec == nil {
		return
	}
	t := rec.Snapshot()
	if t.Empty() {
		fmt.Fprintln(os.Stderr, "# trace: no stages recorded")
		return
	}
	fmt.Fprintln(os.Stderr, "# solve stages:")
	t.WriteTable(os.Stderr)
}

func fatal(err error) {
	profiling.Stop() // flush any requested profiles before the error exit
	fmt.Fprintln(os.Stderr, "encode:", err)
	os.Exit(1)
}
