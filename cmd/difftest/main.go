// Command difftest is the randomized differential-testing driver: it
// generates seeded instances across every family the harness knows —
// feasible-by-construction mixed constraint sets, unrestricted sets,
// extended (distance-2/non-face) sets, random FSMs through symbolic
// minimization, and random symbolic output functions through the GPI
// pipeline — and checks the cross-solver invariant matrix on each
// (see internal/diffcheck).
//
//	difftest -seeds 500 -j 4          500 instances per family, 4 at a time
//	difftest -size 8 -mode set        only the constraint-set family, 8 symbols
//	difftest -seed 1234 -seeds 1      replay one instance
//	difftest -backend sat             SAT-backend solves primary, bb as comparator
//
// On a failure the instance is shrunk to a minimal reproducer and printed
// in the textual constraint language `constraint.Parse` accepts, so it can
// be replayed with `encode` or pinned as a regression test verbatim.
// Exit status is 1 when any invariant was violated.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/diffcheck"
	"repro/internal/gen"
)

type family struct {
	name string
	run  func(ctx context.Context, seed int64, size int, opts diffcheck.Options) diffcheck.Report
}

var families = []family{
	{"feasible", func(ctx context.Context, seed int64, size int, opts diffcheck.Options) diffcheck.Report {
		inst := gen.Random(seed, gen.DefaultConfig(size))
		return diffcheck.CheckSet(ctx, inst.Set, inst.Witness, opts)
	}},
	{"unrestricted", func(ctx context.Context, seed int64, size int, opts diffcheck.Options) diffcheck.Report {
		cfg := gen.DefaultConfig(size)
		cfg.Feasible = false
		inst := gen.Random(seed, cfg)
		return diffcheck.CheckSet(ctx, inst.Set, nil, opts)
	}},
	{"extended", func(ctx context.Context, seed int64, size int, opts diffcheck.Options) diffcheck.Report {
		cfg := gen.DefaultConfig(size)
		cfg.Distance2s = 2
		cfg.NonFaces = 1
		inst := gen.Random(seed, cfg)
		return diffcheck.CheckSet(ctx, inst.Set, inst.Witness, opts)
	}},
	{"multicomponent", func(ctx context.Context, seed int64, size int, opts diffcheck.Options) diffcheck.Report {
		cfg := gen.DefaultConfig(size)
		cfg.Components = 2
		inst := gen.Random(seed, cfg)
		return diffcheck.CheckSet(ctx, inst.Set, inst.Witness, opts)
	}},
	{"fsm", func(ctx context.Context, seed int64, size int, opts diffcheck.Options) diffcheck.Report {
		m := gen.RandomFSM(seed, gen.DefaultFSMConfig(size))
		return diffcheck.CheckFSM(ctx, m, opts)
	}},
	{"gpi", func(ctx context.Context, seed int64, size int, opts diffcheck.Options) diffcheck.Report {
		return diffcheck.CheckFunction(ctx, gen.RandomFunction(seed, gen.DefaultFunctionConfig()), opts)
	}},
}

func main() {
	seeds := flag.Int("seeds", 100, "instances to check per family")
	baseSeed := flag.Int64("seed", 1, "first seed (seed i of a family is seed+i)")
	size := flag.Int("size", 6, "instance size (symbols / FSM states)")
	timeout := flag.Duration("timeout", 20*time.Second, "per-solver budget")
	jobs := flag.Int("j", 1, "instances checked concurrently")
	mode := flag.String("mode", "all", "family to run: all|feasible|unrestricted|extended|multicomponent|fsm|gpi")
	noAnneal := flag.Bool("no-anneal", false, "skip the annealing comparator")
	backendFlag := flag.String("backend", "", "primary covering backend for the exact solves: bb (default) or sat; the matrix always re-solves with the other one")
	verbose := flag.Bool("v", false, "print one line per instance")
	flag.Parse()
	backend, ok := core.ParseBackend(*backendFlag)
	if !ok {
		fmt.Fprintf(os.Stderr, "difftest: unknown -backend %q (want bb or sat)\n", *backendFlag)
		os.Exit(2)
	}

	selected := families
	if *mode != "all" {
		selected = nil
		for _, f := range families {
			if f.name == *mode {
				selected = []family{f}
			}
		}
		if selected == nil {
			fmt.Fprintf(os.Stderr, "difftest: unknown -mode %q\n", *mode)
			os.Exit(2)
		}
	}

	opts := diffcheck.Options{Timeout: *timeout, SkipAnneal: *noAnneal, Backend: backend}
	type job struct {
		fam  family
		seed int64
	}
	type failed struct {
		fam    string
		seed   int64
		report diffcheck.Report
	}
	jobsCh := make(chan job)
	var mu sync.Mutex
	var failures []failed
	checked, skipped := 0, 0

	var wg sync.WaitGroup
	workers := *jobs
	if workers < 1 {
		workers = 1
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for jb := range jobsCh {
				rep := jb.fam.run(context.Background(), jb.seed, *size, opts)
				mu.Lock()
				checked++
				skipped += len(rep.Skipped)
				if !rep.OK() {
					failures = append(failures, failed{jb.fam.name, jb.seed, rep})
				}
				if *verbose {
					status := "ok"
					if !rep.OK() {
						status = "FAIL"
					}
					fmt.Printf("%-12s seed=%-6d feasible=%-5v bits=%-2d %s\n",
						jb.fam.name, jb.seed, rep.Feasible, rep.ExactBits, status)
				}
				mu.Unlock()
			}
		}()
	}

	start := time.Now()
	for _, f := range selected {
		for i := 0; i < *seeds; i++ {
			jobsCh <- job{f, *baseSeed + int64(i)}
		}
	}
	close(jobsCh)
	wg.Wait()

	sort.Slice(failures, func(i, j int) bool {
		if failures[i].fam != failures[j].fam {
			return failures[i].fam < failures[j].fam
		}
		return failures[i].seed < failures[j].seed
	})
	fmt.Printf("difftest: %d instances across %d families in %v: %d invariant violations, %d stages skipped on budget\n",
		checked, len(selected), time.Since(start).Round(time.Millisecond), len(failures), skipped)

	for _, f := range failures {
		fmt.Printf("\nFAIL %s seed=%d:\n%s", f.fam, f.seed, indent(f.report.String()))
		printReproducer(f.fam, f.seed, *size, opts)
	}
	if len(failures) > 0 {
		os.Exit(1)
	}
}

// printReproducer re-generates a failing constraint-set instance, shrinks
// it, and prints it in Parse-able syntax. FSM and GPI failures replay from
// the seed instead: their instances are not constraint sets.
func printReproducer(fam string, seed int64, size int, opts diffcheck.Options) {
	var inst gen.Instance
	switch fam {
	case "feasible":
		inst = gen.Random(seed, gen.DefaultConfig(size))
	case "unrestricted":
		cfg := gen.DefaultConfig(size)
		cfg.Feasible = false
		inst = gen.Random(seed, cfg)
	case "extended":
		cfg := gen.DefaultConfig(size)
		cfg.Distance2s = 2
		cfg.NonFaces = 1
		inst = gen.Random(seed, cfg)
	case "multicomponent":
		cfg := gen.DefaultConfig(size)
		cfg.Components = 2
		inst = gen.Random(seed, cfg)
	default:
		fmt.Printf("  replay with: difftest -mode %s -seed %d -seeds 1 -size %d\n", fam, seed, size)
		return
	}
	shrunk := diffcheck.Shrink(context.Background(), inst.Set, inst.Witness, opts)
	fmt.Printf("  shrunk reproducer (invariant %q):\n%s", shrunk.Invariant, indent(shrunk.Set.Format()))
	if shrunk.Witness != nil {
		fmt.Printf("  witness:\n%s", indent(shrunk.Witness.String()))
	}
}

func indent(s string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	return "    " + strings.Join(lines, "\n    ") + "\n"
}
