// Command paperbench regenerates the corpus comparison tables embedded in
// EXPERIMENTS.md: it runs the full synthesis pipeline (symbolic
// minimization → constraints → encoding → espresso → BLIF → replay) over
// every machine in testdata/corpus for each encoding strategy and splices
// the rendered markdown between the document's paperbench marker blocks.
//
// Usage:
//
//	paperbench              print the tables to stdout
//	paperbench -write       regenerate the blocks in EXPERIMENTS.md in place
//	paperbench -check       exit 1 if EXPERIMENTS.md is stale (used by `make ci`)
//	paperbench -dir D       corpus directory (default testdata/corpus)
//	paperbench -doc F       document to splice (default EXPERIMENTS.md)
//
// Every table cell is deterministic, so -write is byte-identical across
// runs and machines: `make paper-tables` regenerates, `make
// paper-tables-check` verifies.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/corpus"
	"repro/internal/paperbench"
	"repro/internal/pipeline"
)

func main() {
	dir := flag.String("dir", corpus.DefaultDir, "corpus directory")
	doc := flag.String("doc", "EXPERIMENTS.md", "document carrying the paperbench marker blocks")
	write := flag.Bool("write", false, "splice the regenerated tables into -doc")
	check := flag.Bool("check", false, "fail if -doc does not match the regenerated tables")
	workers := flag.Int("workers", 4, "concurrent pipeline runs (does not affect results)")
	flag.Parse()

	if err := run(*dir, *doc, *write, *check, *workers); err != nil {
		fmt.Fprintln(os.Stderr, "paperbench:", err)
		os.Exit(1)
	}
}

func run(dir, doc string, write, check bool, workers int) error {
	machines, err := corpus.Load(dir)
	if err != nil {
		return err
	}
	results, err := paperbench.RunMatrix(context.Background(), machines, paperbench.Options{Workers: workers})
	if err != nil {
		return err
	}
	for _, r := range results {
		for s, rep := range r.Reports {
			if rep.Replay == nil {
				return fmt.Errorf("%s/%s: pipeline skipped the replay check", r.Machine.Name, s)
			}
			if !rep.Replay.OK {
				return fmt.Errorf("%s/%s: netlist replay failed: %s", r.Machine.Name, s, rep.Replay.Error)
			}
		}
	}
	blocks := paperbench.Blocks(machines, results, pipeline.Strategies)

	if !write && !check {
		names := make([]string, 0, len(blocks))
		for name := range blocks {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			fmt.Printf("## %s\n\n%s\n", name, blocks[name])
		}
		return nil
	}

	raw, err := os.ReadFile(doc)
	if err != nil {
		return err
	}
	spliced, err := paperbench.Splice(string(raw), blocks)
	if err != nil {
		return err
	}
	if check {
		if spliced != string(raw) {
			return fmt.Errorf("%s is stale; run `make paper-tables` and commit the result", doc)
		}
		fmt.Printf("%s is up to date\n", doc)
		return nil
	}
	if spliced == string(raw) {
		fmt.Printf("%s unchanged\n", doc)
		return nil
	}
	if err := os.WriteFile(doc, []byte(spliced), 0o644); err != nil {
		return err
	}
	fmt.Printf("%s updated\n", doc)
	return nil
}
