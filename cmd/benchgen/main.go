// Command benchgen materializes the deterministic synthetic benchmark
// suite as KISS2 files and prints per-machine statistics, so the instances
// the experiments run on can be inspected, archived or fed to other tools.
//
//	benchgen -dir bench/           write every machine to bench/<name>.kiss2
//	benchgen -list                 print the statistics table only
//	benchgen -name dk16            print one machine's KISS2 to stdout
//	benchgen -minimize ...         state-minimize machines before output
//	benchgen -name dk16 -constraints
//	                               print the machine's symbolic-minimization
//	                               constraint set in the textual grammar
//	                               `encode` and constraint.Parse accept
//	benchgen -families -dir d/     write the synthetic scale family
//	                               (syn06..syn12) instead of the paper suite —
//	                               the generator behind the larger
//	                               testdata/corpus/ machines
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/fsm"
	"repro/internal/kiss"
	"repro/internal/mv"
)

func main() {
	dir := flag.String("dir", "", "directory to write <name>.kiss2 files into")
	list := flag.Bool("list", false, "print statistics for every benchmark")
	name := flag.String("name", "", "print one benchmark's KISS2 to stdout")
	minimize := flag.Bool("minimize", false, "state-minimize machines first")
	constraints := flag.Bool("constraints", false,
		"emit constraint sets in Parse-able syntax instead of KISS2")
	families := flag.Bool("families", false,
		"operate on the synthetic scale family (syn06..syn12) instead of the paper suite")
	flag.Parse()

	if *name != "" {
		m, err := fsm.GenerateByName(*name)
		if err != nil {
			fatal(err)
		}
		if *minimize {
			if m, _, err = fsm.MinimizeStates(m); err != nil {
				fatal(err)
			}
		}
		if *constraints {
			fmt.Print(mv.GenerateConstraints(m, mv.OutputOptions{}).Format())
			return
		}
		fmt.Print(kiss.Format(m))
		return
	}

	if *dir == "" && !*list {
		flag.Usage()
		os.Exit(2)
	}

	specs := fsm.Suite
	if *families {
		specs = fsm.ScaleFamily
	}
	fmt.Printf("%-9s %7s %7s %8s %7s %7s %7s\n",
		"name", "states", "min-st", "inputs", "outputs", "trans", "faces")
	for _, spec := range specs {
		m := fsm.Generate(spec)
		q, _, err := fsm.MinimizeStates(m)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", spec.Name, err))
		}
		out := m
		if *minimize {
			out = q
		}
		cs := mv.InputConstraints(out)
		fmt.Printf("%-9s %7d %7d %8d %7d %7d %7d\n",
			spec.Name, m.NumStates(), q.NumStates(), m.NumInputs, m.NumOutputs,
			len(out.Trans), len(cs.Faces))
		if *dir != "" {
			if *constraints {
				cs := mv.GenerateConstraints(out, mv.OutputOptions{})
				path := filepath.Join(*dir, spec.Name+".constraints")
				if err := os.WriteFile(path, []byte(cs.Format()), 0o644); err != nil {
					fatal(err)
				}
				continue
			}
			path := filepath.Join(*dir, spec.Name+".kiss2")
			f, err := os.Create(path)
			if err != nil {
				fatal(err)
			}
			if err := kiss.Write(f, out); err != nil {
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchgen:", err)
	os.Exit(1)
}
