// Command fsmenc runs the full state-assignment flow on a KISS2 finite
// state machine: symbolic (multi-valued) minimization, constraint
// generation, constraint satisfaction, and PLA emission.
//
//	fsmenc machine.kiss2              exact mixed-constraint encoding
//	fsmenc -input-only machine.kiss2  face constraints only
//	fsmenc -heuristic machine.kiss2   bounded-length heuristic at min length
//	fsmenc -gen bbsse                 use a built-in synthetic benchmark
//	fsmenc -pla machine.kiss2         also print the encoded, minimized PLA
//
// The -pipeline mode runs the composed end-to-end flow instead (symbolic
// minimization → constraints → encoding → espresso → BLIF → replay
// verification) and reports per-stage results:
//
//	fsmenc -pipeline machine.kiss2               text report (exact strategy)
//	fsmenc -pipeline -strategy nova -format json full pipeline.Report as JSON
//	fsmenc -pipeline -format md machine.kiss2    markdown summary table
//
// In -pipeline mode the exit status is non-zero when the replay check
// fails: a successful run certifies the emitted netlist.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/blif"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/fsm"
	"repro/internal/heuristic"
	"repro/internal/kiss"
	"repro/internal/mv"
	"repro/internal/par"
	"repro/internal/pipeline"
	"repro/internal/profiling"
	"repro/internal/trace"
)

func main() {
	inputOnly := flag.Bool("input-only", false, "generate face constraints only")
	useHeuristic := flag.Bool("heuristic", false, "use the bounded-length heuristic (minimum length)")
	gen := flag.String("gen", "", "use the named built-in synthetic benchmark instead of a file")
	emitKiss := flag.Bool("kiss", false, "print the (generated) machine in KISS2 and exit")
	pla := flag.Bool("pla", false, "print the encoded, minimized PLA")
	emitBlif := flag.Bool("blif", false, "print the encoded machine as a BLIF netlist")
	minimize := flag.Bool("minimize", false, "state-minimize the machine before encoding")
	timeout := flag.Duration("timeout", time.Minute, "time budget for the exact search")
	jobs := flag.Int("j", 0, "worker count for the parallel engines (0 = all CPUs, 1 = sequential); results are identical for any value")
	traceFlag := flag.Bool("trace", false, "print a per-stage time table to stderr after solving")
	runPipeline := flag.Bool("pipeline", false, "run the composed end-to-end pipeline and report per-stage results")
	strategy := flag.String("strategy", "exact", "pipeline encoding strategy: "+pipeline.StrategyList())
	format := flag.String("format", "text", "pipeline report format: text|json|md")
	flag.Parse()
	if err := profiling.Start(); err != nil {
		fatal(err)
	}
	defer profiling.Stop()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	var rec *trace.Recorder
	if *traceFlag {
		ctx, rec = trace.Start(ctx)
		defer printTrace(rec)
	}

	var m *fsm.FSM
	var err error
	switch {
	case *gen != "":
		m, err = fsm.GenerateByName(*gen)
	case flag.NArg() > 0:
		var f *os.File
		if f, err = os.Open(flag.Arg(0)); err == nil {
			m, err = kiss.Parse(f)
			f.Close()
			if err == nil && m.Name == "" {
				base := filepath.Base(flag.Arg(0))
				m.Name = strings.TrimSuffix(base, filepath.Ext(base))
			}
		}
	default:
		m, err = kiss.Parse(os.Stdin)
	}
	if err != nil {
		fatal(err)
	}
	if err := m.Validate(); err != nil {
		fatal(err)
	}
	if *minimize {
		q, _, err := fsm.MinimizeStates(m)
		if err != nil {
			fatal(err)
		}
		if q.NumStates() < m.NumStates() {
			fmt.Printf("# state minimization: %d -> %d states\n", m.NumStates(), q.NumStates())
		}
		m = q
	}
	if *emitKiss {
		fmt.Print(kiss.Format(m))
		return
	}
	if *runPipeline {
		strat, ok := pipeline.ParseStrategy(*strategy)
		if !ok {
			fatal(fmt.Errorf("unknown strategy %q (want %s)", *strategy, pipeline.StrategyList()))
		}
		rep, err := pipeline.Run(ctx, m, pipeline.Options{
			Strategy:    strat,
			Parallelism: par.Parallelism{Workers: *jobs, TimeLimit: *timeout},
		})
		if err != nil {
			fatal(err)
		}
		switch *format {
		case "text":
			fmt.Print(rep.Text())
			if *emitBlif {
				fmt.Print(rep.BLIF)
			}
		case "json":
			fmt.Print(rep.JSON())
		case "md":
			fmt.Print(rep.Markdown())
		default:
			fatal(fmt.Errorf("unknown format %q (want text|json|md)", *format))
		}
		if rep.Replay != nil && !rep.Replay.OK {
			fatal(fmt.Errorf("netlist replay failed: %s", rep.Replay.Error))
		}
		return
	}

	var enc *core.Encoding
	switch {
	case *useHeuristic:
		cs := mv.InputConstraints(m)
		fmt.Printf("# %d states, %d transitions, %d face constraints\n",
			m.NumStates(), len(m.Trans), len(cs.Faces))
		res, err := heuristic.EncodeCtx(ctx, cs, heuristic.Options{Metric: cost.Cubes, Parallelism: par.Workers(*jobs)})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("# heuristic encoding: %d bits, %d violations, %d cubes\n",
			res.Encoding.Bits, res.Cost.Violations, res.Cost.Cubes)
		enc = res.Encoding
	case *inputOnly:
		cs := mv.InputConstraints(m)
		fmt.Printf("# %d states, %d transitions, %d face constraints\n",
			m.NumStates(), len(m.Trans), len(cs.Faces))
		res, err := core.ExactEncodeCtx(ctx, cs, core.ExactOptions{
			Parallelism: par.Parallelism{Workers: *jobs, TimeLimit: *timeout},
		})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("# exact input encoding: %d bits (%d primes)\n", res.Encoding.Bits, len(res.Primes))
		enc = res.Encoding
	default:
		cs := mv.GenerateConstraints(m, mv.OutputOptions{})
		fmt.Printf("# %d states, %d transitions, %d faces, %d dominance, %d disjunctive\n",
			m.NumStates(), len(m.Trans), len(cs.Faces), len(cs.Dominances), len(cs.Disjunctives))
		res, err := core.ExactEncodeCtx(ctx, cs, core.ExactOptions{
			Parallelism: par.Parallelism{Workers: *jobs, TimeLimit: *timeout},
		})
		if err != nil {
			fatal(err)
		}
		if v := core.Verify(cs, res.Encoding); len(v) != 0 {
			fatal(fmt.Errorf("internal error: encoding failed verification: %v", v[0]))
		}
		fmt.Printf("# exact mixed encoding: %d bits (%d primes)\n", res.Encoding.Bits, len(res.Primes))
		enc = res.Encoding
	}

	for s := 0; s < m.NumStates(); s++ {
		fmt.Printf(".code %s %s\n", m.States.Name(s), enc.CodeString(s))
	}

	if *pla {
		p := m.Encode(enc)
		before := p.Cubes()
		p.Minimize()
		fmt.Printf("# PLA: %d -> %d product terms, %d input literals\n",
			before, p.Cubes(), p.Literals())
		fmt.Print(p)
	}
	if *emitBlif {
		text, err := blif.Format(m, enc)
		if err != nil {
			fatal(err)
		}
		fmt.Print(text)
	}
}

// printTrace renders the recorded stage-time table on stderr, keeping
// stdout clean for the codes/PLA/BLIF output.
func printTrace(rec *trace.Recorder) {
	if rec == nil {
		return
	}
	t := rec.Snapshot()
	if t.Empty() {
		fmt.Fprintln(os.Stderr, "# trace: no stages recorded")
		return
	}
	fmt.Fprintln(os.Stderr, "# solve stages:")
	t.WriteTable(os.Stderr)
}

func fatal(err error) {
	profiling.Stop() // flush any requested profiles before the error exit
	fmt.Fprintln(os.Stderr, "fsmenc:", err)
	os.Exit(1)
}
