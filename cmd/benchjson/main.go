// Command benchjson converts `go test -bench` output on stdin into a JSON
// array on stdout, one record per benchmark result line:
//
//	go test -run '^$' -bench Kernel -benchmem ./... | benchjson > bench.json
//
// Each record carries the benchmark name (GOMAXPROCS suffix stripped), the
// iteration count and the ns/op, B/op and allocs/op readings; metrics the
// run did not report are -1. Non-benchmark lines (PASS, ok, headers) are
// ignored, so the whole `go test` stream can be piped through unfiltered.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Record is one benchmark result.
type Record struct {
	Name        string  `json:"name"`
	Package     string  `json:"package,omitempty"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

func main() {
	recs, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(recs); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parse scans `go test -bench` output. `pkg:` lines emitted by go test
// ("pkg: repro/internal/bitset") attribute the benchmarks that follow.
func parse(sc *bufio.Scanner) ([]Record, error) {
	recs := []Record{}
	pkg := ""
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if rest, ok := strings.CutPrefix(line, "pkg:"); ok {
			pkg = strings.TrimSpace(rest)
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		r, ok := parseLine(line)
		if !ok {
			continue
		}
		r.Package = pkg
		recs = append(recs, r)
	}
	return recs, sc.Err()
}

// parseLine parses one "BenchmarkX-8  N  T ns/op  B B/op  A allocs/op"
// result line; reports ok=false for lines that only look like one.
func parseLine(line string) (Record, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Record{}, false
	}
	name := fields[0]
	// Strip the -GOMAXPROCS suffix so records compare across machines.
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Record{}, false
	}
	r := Record{Name: name, Iterations: iters, NsPerOp: -1, BytesPerOp: -1, AllocsPerOp: -1}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch fields[i+1] {
		case "ns/op":
			r.NsPerOp = v
		case "B/op":
			r.BytesPerOp = v
		case "allocs/op":
			r.AllocsPerOp = v
		}
	}
	if r.NsPerOp < 0 {
		return Record{}, false
	}
	return r, true
}
