package main

import (
	"bufio"
	"strings"
	"testing"
)

func TestParseBenchOutput(t *testing.T) {
	const out = `goos: linux
goarch: amd64
pkg: repro/internal/bitset
cpu: Some CPU @ 2.0GHz
BenchmarkIntersectKernel-8   	33677077	        35.63 ns/op	      64 B/op	       1 allocs/op
BenchmarkIntersectIntoKernel 	41000000	        29.10 ns/op	       0 B/op	       0 allocs/op
PASS
ok  	repro/internal/bitset	2.1s
pkg: repro/internal/prime
BenchmarkBronKerboschKernel-8 	    4279	    289270 ns/op	  117048 B/op	     139 allocs/op
BenchmarkNoMem 	    1000	    1234 ns/op
ok  	repro/internal/prime	1.0s
`
	recs, err := parse(bufio.NewScanner(strings.NewReader(out)))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 4 {
		t.Fatalf("parsed %d records, want 4: %+v", len(recs), recs)
	}
	r := recs[0]
	if r.Name != "BenchmarkIntersectKernel" || r.Package != "repro/internal/bitset" ||
		r.Iterations != 33677077 || r.NsPerOp != 35.63 || r.BytesPerOp != 64 || r.AllocsPerOp != 1 {
		t.Fatalf("record 0 = %+v", r)
	}
	if recs[1].AllocsPerOp != 0 || recs[1].Name != "BenchmarkIntersectIntoKernel" {
		t.Fatalf("record 1 = %+v", recs[1])
	}
	if recs[2].Package != "repro/internal/prime" || recs[2].AllocsPerOp != 139 {
		t.Fatalf("record 2 = %+v", recs[2])
	}
	// -benchmem absent: memory metrics report -1, ns/op still parsed.
	if recs[3].NsPerOp != 1234 || recs[3].BytesPerOp != -1 || recs[3].AllocsPerOp != -1 {
		t.Fatalf("record 3 = %+v", recs[3])
	}
}

func TestParseLineRejectsNonResults(t *testing.T) {
	for _, line := range []string{
		"BenchmarkFoo", // bare name, no fields
		"Benchmarking something else entirely with words",
		"BenchmarkBar-8 notanumber 10 ns/op",
		"BenchmarkBaz-8 1000 10 bogounits", // no ns/op column at all
	} {
		if _, ok := parseLine(line); ok {
			t.Fatalf("parseLine accepted %q", line)
		}
	}
}

// TestParseLineTable pins the result-line grammar: sub-benchmark names from
// b.Run, GOMAXPROCS suffix stripping (and names whose tail merely looks
// like one), and runs without -benchmem columns.
func TestParseLineTable(t *testing.T) {
	tests := []struct {
		line string
		want Record
	}{
		{
			// Sub-benchmark from b.Run: the slash is part of the name, only
			// the trailing -GOMAXPROCS is stripped.
			line: "BenchmarkUnateCoverParallelKernel/small-1 \t 100\t  12022949 ns/op\t       0 B/op\t       0 allocs/op",
			want: Record{Name: "BenchmarkUnateCoverParallelKernel/small", Iterations: 100, NsPerOp: 12022949, BytesPerOp: 0, AllocsPerOp: 0},
		},
		{
			line: "BenchmarkBronKerboschParallelKernel/large-8 \t 79\t  14537000 ns/op",
			want: Record{Name: "BenchmarkBronKerboschParallelKernel/large", Iterations: 79, NsPerOp: 14537000, BytesPerOp: -1, AllocsPerOp: -1},
		},
		{
			// A non-numeric tail after '-' belongs to the name and stays.
			line: "BenchmarkEncode-greedy 	 50	 200 ns/op",
			want: Record{Name: "BenchmarkEncode-greedy", Iterations: 50, NsPerOp: 200, BytesPerOp: -1, AllocsPerOp: -1},
		},
		{
			// No GOMAXPROCS suffix at all (benchtime runs on GOMAXPROCS=1
			// sometimes omit it for sub-benchmarks); name passes through.
			line: "BenchmarkHeuristicEncodeKernel 	 5000	 212000 ns/op	 56000 B/op	 890 allocs/op",
			want: Record{Name: "BenchmarkHeuristicEncodeKernel", Iterations: 5000, NsPerOp: 212000, BytesPerOp: 56000, AllocsPerOp: 890},
		},
	}
	for _, tt := range tests {
		got, ok := parseLine(tt.line)
		if !ok {
			t.Errorf("parseLine rejected %q", tt.line)
			continue
		}
		if got != tt.want {
			t.Errorf("parseLine(%q) = %+v, want %+v", tt.line, got, tt.want)
		}
	}
}

// TestParseSkipsNonBenchmarkLines feeds a full go test stream — headers,
// PASS/ok trailers, a failing-package line — and checks only result lines
// survive, attributed to the right package.
func TestParseSkipsNonBenchmarkLines(t *testing.T) {
	const out = `goos: linux
goarch: amd64
pkg: repro/internal/cover
cpu: Some CPU @ 2.0GHz
BenchmarkUnateCoverKernel-1   	     289	   4032648 ns/op	       0 B/op	       0 allocs/op
BenchmarkUnateCoverParallelKernel/small-1   	      98	  12022949 ns/op	       0 B/op	       0 allocs/op
--- FAIL: TestSomethingElse
PASS
ok  	repro/internal/cover	6.2s
FAIL	repro/internal/broken	0.1s
?   	repro/cmd/encode	[no test files]
`
	recs, err := parse(bufio.NewScanner(strings.NewReader(out)))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("parsed %d records, want 2: %+v", len(recs), recs)
	}
	if recs[0].Name != "BenchmarkUnateCoverKernel" || recs[0].Package != "repro/internal/cover" {
		t.Fatalf("record 0 = %+v", recs[0])
	}
	if recs[1].Name != "BenchmarkUnateCoverParallelKernel/small" {
		t.Fatalf("record 1 = %+v", recs[1])
	}
}
