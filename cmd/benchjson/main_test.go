package main

import (
	"bufio"
	"strings"
	"testing"
)

func TestParseBenchOutput(t *testing.T) {
	const out = `goos: linux
goarch: amd64
pkg: repro/internal/bitset
cpu: Some CPU @ 2.0GHz
BenchmarkIntersectKernel-8   	33677077	        35.63 ns/op	      64 B/op	       1 allocs/op
BenchmarkIntersectIntoKernel 	41000000	        29.10 ns/op	       0 B/op	       0 allocs/op
PASS
ok  	repro/internal/bitset	2.1s
pkg: repro/internal/prime
BenchmarkBronKerboschKernel-8 	    4279	    289270 ns/op	  117048 B/op	     139 allocs/op
BenchmarkNoMem 	    1000	    1234 ns/op
ok  	repro/internal/prime	1.0s
`
	recs, err := parse(bufio.NewScanner(strings.NewReader(out)))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 4 {
		t.Fatalf("parsed %d records, want 4: %+v", len(recs), recs)
	}
	r := recs[0]
	if r.Name != "BenchmarkIntersectKernel" || r.Package != "repro/internal/bitset" ||
		r.Iterations != 33677077 || r.NsPerOp != 35.63 || r.BytesPerOp != 64 || r.AllocsPerOp != 1 {
		t.Fatalf("record 0 = %+v", r)
	}
	if recs[1].AllocsPerOp != 0 || recs[1].Name != "BenchmarkIntersectIntoKernel" {
		t.Fatalf("record 1 = %+v", recs[1])
	}
	if recs[2].Package != "repro/internal/prime" || recs[2].AllocsPerOp != 139 {
		t.Fatalf("record 2 = %+v", recs[2])
	}
	// -benchmem absent: memory metrics report -1, ns/op still parsed.
	if recs[3].NsPerOp != 1234 || recs[3].BytesPerOp != -1 || recs[3].AllocsPerOp != -1 {
		t.Fatalf("record 3 = %+v", recs[3])
	}
}

func TestParseLineRejectsNonResults(t *testing.T) {
	for _, line := range []string{
		"BenchmarkFoo", // bare name, no fields
		"Benchmarking something else entirely with words",
		"BenchmarkBar-8 notanumber 10 ns/op",
	} {
		if _, ok := parseLine(line); ok {
			t.Fatalf("parseLine accepted %q", line)
		}
	}
}
