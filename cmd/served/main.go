// Command served runs the encoding service: an HTTP/JSON API over the
// P-1/P-2/P-3 solvers with bounded concurrency, request coalescing, a
// result cache and graceful shutdown.
//
//	served -addr :8080
//
// Endpoints:
//
//	POST   /v1/encode       solve a constraint set (modes: feasible, exact, heuristic)
//	POST   /v1/encode/batch solve N constraint sets; duplicates coalesce to one solve
//	POST   /v1/pipeline     run the KISS2 synthesis pipeline
//	POST   /v1/jobs         submit an async encode/pipeline job (202 + job id)
//	GET    /v1/jobs         list the calling tenant's jobs (credential required)
//	GET    /v1/jobs/{id}    poll one job; ?wait=5s long-polls until terminal
//	DELETE /v1/jobs/{id}    cancel a queued or running job
//	GET    /v1/healthz      liveness (503 while draining)
//	GET    /v1/stats        service metrics as JSON
//	GET    /v1/trace        recent solve traces (stage spans), newest first
//	GET    /v1/trace/{id}   one solve trace by the id from the encode response
//	GET    /debug/vars      expvar, including encoding_server_stats (-debug only)
//	GET    /debug/pprof/    Go profiling endpoints (-debug only)
//
// Tenants are keyed by bearer token (Authorization: Bearer <tok> or
// X-API-Key); requests without credentials share the anonymous tenant.
// -tenant-active and -tenant-jobs bound each tenant's concurrent solves
// and live jobs; exhausted quotas answer 429 with Retry-After.
//
// Solves slower than -slow-solve emit one structured log line with the
// stage breakdown and trace id.
//
// On SIGINT/SIGTERM the server stops intake, drains in-flight solves for
// -drain, then cancels whatever is still running and exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/encodingapi"
	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "pool workers: concurrent solves (0 = all CPUs)")
	solveWorkers := flag.Int("solve-workers", 1, "engine workers per solve (0 = all CPUs); results are identical for any value")
	queue := flag.Int("queue", server.DefaultQueueDepth, "pending-solve queue depth before shedding load with 429")
	cacheEntries := flag.Int("cache", server.DefaultCacheEntries, "result-cache entries (0 disables caching)")
	timeout := flag.Duration("timeout", server.DefaultTimeout, "default solve budget per request")
	maxTimeout := flag.Duration("max-timeout", server.DefaultMaxTimeout, "ceiling on client-requested solve budgets")
	drain := flag.Duration("drain", 30*time.Second, "graceful-shutdown drain budget")
	debug := flag.Bool("debug", false, "mount /debug/pprof and /debug/vars on the service listener")
	slowSolve := flag.Duration("slow-solve", server.DefaultSlowSolve, "log solves slower than this (negative disables)")
	traceBuffer := flag.Int("trace-buffer", server.DefaultTraceBuffer, "recent solve traces retained for /v1/trace (negative disables)")
	maxBatch := flag.Int("max-batch", server.DefaultMaxBatchItems, "items accepted per /v1/encode/batch request")
	jobTTL := flag.Duration("job-ttl", 0, "retention of finished jobs before eviction (0 = default 10m)")
	maxJobs := flag.Int("max-jobs", 0, "jobs retained in the store before submits shed with 429 (0 = default 1024)")
	maxJobWait := flag.Duration("max-job-wait", server.DefaultMaxJobWait, "ceiling on ?wait= long-poll windows")
	tenantActive := flag.Int("tenant-active", 0, "concurrent solves per tenant before shedding with 429 (0 = unlimited)")
	tenantJobs := flag.Int("tenant-jobs", 0, "live jobs per tenant before submits shed with 429 (0 = unlimited)")
	decompose := flag.Bool("decompose", false, "solve exact requests by connected-component decomposition (per-component caching)")
	backend := flag.String("backend", "", "default exact-mode covering backend: bb (branch-and-bound) or sat")
	flag.Parse()
	if _, ok := encodingapi.ParseBackend(*backend); !ok {
		fatal(fmt.Errorf("unknown backend %q (want bb or sat)", *backend))
	}

	srv := server.New(server.Config{
		Addr:               *addr,
		Workers:            *workers,
		SolveWorkers:       *solveWorkers,
		QueueDepth:         *queue,
		CacheEntries:       *cacheEntries,
		DefaultTimeout:     *timeout,
		MaxTimeout:         *maxTimeout,
		Debug:              *debug,
		SlowSolveThreshold: *slowSolve,
		TraceBuffer:        *traceBuffer,
		MaxBatchItems:      *maxBatch,
		JobTTL:             *jobTTL,
		MaxJobs:            *maxJobs,
		MaxJobWait:         *maxJobWait,
		TenantMaxActive:    *tenantActive,
		TenantMaxJobs:      *tenantJobs,
		Decompose:          *decompose,
		Backend:            *backend,
	})
	srv.PublishExpvar()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "served: listening on %s\n", *addr)

	select {
	case err := <-errc:
		fatal(err)
	case <-ctx.Done():
	}
	stop()
	fmt.Fprintf(os.Stderr, "served: draining (up to %s)\n", *drain)

	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fatal(err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fatal(err)
	}
	fmt.Fprintln(os.Stderr, "served: shutdown complete")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "served:", err)
	os.Exit(1)
}
