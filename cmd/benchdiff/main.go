// Command benchdiff gates performance regressions: it compares a fresh
// benchjson run against the committed snapshot and exits non-zero when a
// kernel benchmark got worse.
//
//	go test -run '^$' -bench Kernel -benchmem ./... | benchjson |
//	    benchdiff -baseline BENCH_PR7.json -current - -mode smoke
//
// Two modes share one rule — every baseline benchmark must be present in
// the current run (a silently dropped metric is itself a regression) — and
// differ in what they check on the numbers:
//
//   - strict: allocs/op must match the snapshot exactly (the kernels are
//     deterministic, so steady-state allocation counts are bit-stable at
//     full benchtime), B/op within -bytes-tol, ns/op within -ns-tol. For
//     release runs against a full `make bench-json` measurement.
//   - smoke: allocs/op within a small band (2% plus an absolute slack of 8,
//     absorbing the first-iteration warm-up that short -benchtime runs
//     amortize poorly), timing ignored entirely — CI machines are too noisy
//     for ns/op at -benchtime=20x to mean anything. Cheap enough for every
//     `make ci`.
//
// Benchmarks present only in the current run are reported but never fail
// the gate: adding coverage is not a regression.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
)

// record mirrors cmd/benchjson's output shape.
type record struct {
	Name        string  `json:"name"`
	Package     string  `json:"package"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// key identifies a benchmark across runs: packages can reuse benchmark
// names, so the pair is the identity.
func (r record) key() string { return r.Package + "." + r.Name }

// tolerances bundles the per-metric bands of one gate mode.
type tolerances struct {
	allocsExact bool    // strict: allocs/op must match bit for bit
	allocsFrac  float64 // smoke: fractional allocs/op band
	allocsSlack float64 // smoke: absolute allocs/op slack (first-iteration warm-up)
	nsFrac      float64 // <0: ignore timing
	bytesFrac   float64 // <0: ignore bytes
}

func modeTolerances(mode string, nsTol, bytesTol float64) (tolerances, error) {
	switch mode {
	case "strict":
		return tolerances{allocsExact: true, nsFrac: nsTol, bytesFrac: bytesTol}, nil
	case "smoke":
		return tolerances{allocsFrac: 0.02, allocsSlack: 8, nsFrac: -1, bytesFrac: -1}, nil
	default:
		return tolerances{}, fmt.Errorf("unknown mode %q (want strict or smoke)", mode)
	}
}

// diff returns one violation message per regression of current against
// baseline under the given tolerances. An empty slice means the gate
// passes.
func diff(baseline, current []record, tol tolerances) []string {
	cur := make(map[string]record, len(current))
	for _, r := range current {
		cur[r.key()] = r
	}
	var violations []string
	for _, b := range baseline {
		c, ok := cur[b.key()]
		if !ok {
			violations = append(violations, fmt.Sprintf("%s: missing from current run (dropped benchmark?)", b.key()))
			continue
		}
		// allocs/op: a deterministic metric — the gate's backbone.
		switch {
		case b.AllocsPerOp < 0:
			// Baseline never measured allocations; nothing to hold the
			// current run to.
		case c.AllocsPerOp < 0:
			violations = append(violations, fmt.Sprintf("%s: baseline has allocs/op=%.0f but current run did not report allocations (-benchmem missing?)", b.key(), b.AllocsPerOp))
		case tol.allocsExact && c.AllocsPerOp != b.AllocsPerOp:
			violations = append(violations, fmt.Sprintf("%s: allocs/op %.0f, want exactly %.0f", b.key(), c.AllocsPerOp, b.AllocsPerOp))
		case !tol.allocsExact && c.AllocsPerOp > b.AllocsPerOp*(1+tol.allocsFrac)+tol.allocsSlack:
			violations = append(violations, fmt.Sprintf("%s: allocs/op %.0f exceeds %.0f (+%.0f%% +%.0f slack)", b.key(), c.AllocsPerOp, b.AllocsPerOp, tol.allocsFrac*100, tol.allocsSlack))
		}
		if tol.bytesFrac >= 0 && b.BytesPerOp >= 0 && c.BytesPerOp > b.BytesPerOp*(1+tol.bytesFrac) {
			violations = append(violations, fmt.Sprintf("%s: B/op %.0f exceeds %.0f (+%.0f%%)", b.key(), c.BytesPerOp, b.BytesPerOp, tol.bytesFrac*100))
		}
		if tol.nsFrac >= 0 && b.NsPerOp > 0 && c.NsPerOp > b.NsPerOp*(1+tol.nsFrac) {
			violations = append(violations, fmt.Sprintf("%s: ns/op %.0f exceeds %.0f (+%.0f%% noise band)", b.key(), c.NsPerOp, b.NsPerOp, tol.nsFrac*100))
		}
	}
	return violations
}

// added lists current benchmarks absent from the baseline, informationally.
func added(baseline, current []record) []string {
	base := make(map[string]bool, len(baseline))
	for _, r := range baseline {
		base[r.key()] = true
	}
	var names []string
	for _, r := range current {
		if !base[r.key()] {
			names = append(names, r.key())
		}
	}
	return names
}

func load(path string) ([]record, error) {
	var rd io.Reader = os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		rd = f
	}
	var recs []record
	if err := json.NewDecoder(rd).Decode(&recs); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return recs, nil
}

func main() {
	baselinePath := flag.String("baseline", "", "committed benchjson snapshot (required)")
	currentPath := flag.String("current", "-", "fresh benchjson run, or - for stdin")
	mode := flag.String("mode", "strict", "gate mode: strict (allocs exact, ns band) or smoke (allocs band, ns ignored)")
	nsTol := flag.Float64("ns-tol", 0.35, "strict mode: fractional ns/op noise band")
	bytesTol := flag.Float64("bytes-tol", 0.15, "strict mode: fractional B/op band")
	flag.Parse()
	if *baselinePath == "" {
		fmt.Fprintln(os.Stderr, "benchdiff: -baseline is required")
		os.Exit(2)
	}
	tol, err := modeTolerances(*mode, *nsTol, *bytesTol)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	baseline, err := load(*baselinePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	current, err := load(*currentPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}

	for _, name := range added(baseline, current) {
		fmt.Printf("benchdiff: new benchmark %s (not in baseline)\n", name)
	}
	violations := diff(baseline, current, tol)
	if len(violations) > 0 {
		for _, v := range violations {
			fmt.Fprintln(os.Stderr, "benchdiff: FAIL:", v)
		}
		fmt.Fprintf(os.Stderr, "benchdiff: %d regression(s) against %s (mode %s)\n", len(violations), *baselinePath, *mode)
		os.Exit(1)
	}
	fmt.Printf("benchdiff: %d benchmarks OK against %s (mode %s)\n", len(baseline), *baselinePath, *mode)
}
