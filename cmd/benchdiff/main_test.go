package main

import (
	"strings"
	"testing"
)

func mustTol(t *testing.T, mode string) tolerances {
	t.Helper()
	tol, err := modeTolerances(mode, 0.35, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	return tol
}

var baseline = []record{
	{Name: "BenchmarkUnateCoverKernel-1", Package: "repro/internal/cover", NsPerOp: 4.0e6, BytesPerOp: 0, AllocsPerOp: 0},
	{Name: "BenchmarkHeuristicEncodeKernel-1", Package: "repro/internal/heuristic", NsPerOp: 2.1e5, BytesPerOp: 56000, AllocsPerOp: 890},
	{Name: "BenchmarkIntersectInto/words=64-1", Package: "repro/internal/bitset", NsPerOp: 45, BytesPerOp: -1, AllocsPerOp: -1},
}

func TestGatePassesOnIdenticalRun(t *testing.T) {
	for _, mode := range []string{"strict", "smoke"} {
		if v := diff(baseline, baseline, mustTol(t, mode)); len(v) != 0 {
			t.Errorf("mode %s: identical runs produced violations: %v", mode, v)
		}
	}
}

// TestGateFailsOnInjectedAllocRegression is the acceptance demonstration:
// take the committed snapshot shape, bump one benchmark's allocs/op, and
// the gate must fail in both modes.
func TestGateFailsOnInjectedAllocRegression(t *testing.T) {
	current := append([]record(nil), baseline...)
	current[0].AllocsPerOp = 646 // the pre-optimization number, reinjected

	for _, mode := range []string{"strict", "smoke"} {
		v := diff(baseline, current, mustTol(t, mode))
		if len(v) != 1 {
			t.Fatalf("mode %s: want exactly 1 violation, got %v", mode, v)
		}
		if !strings.Contains(v[0], "UnateCoverKernel") || !strings.Contains(v[0], "allocs/op") {
			t.Errorf("mode %s: violation does not name the regressed metric: %q", mode, v[0])
		}
	}
}

func TestStrictRequiresExactAllocs(t *testing.T) {
	current := append([]record(nil), baseline...)
	current[1].AllocsPerOp = 892 // +2: inside smoke slack, outside strict

	if v := diff(baseline, current, mustTol(t, "strict")); len(v) != 1 {
		t.Errorf("strict: +2 allocs must fail exact match, got %v", v)
	}
	if v := diff(baseline, current, mustTol(t, "smoke")); len(v) != 0 {
		t.Errorf("smoke: +2 allocs is inside the warm-up slack, got %v", v)
	}
}

func TestSmokeIgnoresTiming(t *testing.T) {
	current := append([]record(nil), baseline...)
	current[0].NsPerOp *= 10

	if v := diff(baseline, current, mustTol(t, "smoke")); len(v) != 0 {
		t.Errorf("smoke: timing must be ignored, got %v", v)
	}
	if v := diff(baseline, current, mustTol(t, "strict")); len(v) != 1 {
		t.Errorf("strict: 10x ns/op must exceed the noise band, got %v", v)
	}
}

func TestStrictNsNoiseBandAbsorbsJitter(t *testing.T) {
	current := append([]record(nil), baseline...)
	current[0].NsPerOp *= 1.2 // within the default 35% band

	if v := diff(baseline, current, mustTol(t, "strict")); len(v) != 0 {
		t.Errorf("strict: 20%% jitter is inside the noise band, got %v", v)
	}
}

func TestGateFailsOnMissingBenchmark(t *testing.T) {
	current := baseline[:2] // bitset benchmark dropped
	for _, mode := range []string{"strict", "smoke"} {
		v := diff(baseline, current, mustTol(t, mode))
		if len(v) != 1 || !strings.Contains(v[0], "missing") {
			t.Errorf("mode %s: dropped benchmark must fail the gate, got %v", mode, v)
		}
	}
}

func TestGateFailsWhenCurrentLacksBenchmem(t *testing.T) {
	current := append([]record(nil), baseline...)
	current[1].AllocsPerOp = -1
	current[1].BytesPerOp = -1

	v := diff(baseline, current, mustTol(t, "smoke"))
	if len(v) != 1 || !strings.Contains(v[0], "-benchmem") {
		t.Errorf("run without -benchmem must fail against a measured baseline, got %v", v)
	}
}

func TestUnmeasuredBaselineMetricsAreSkipped(t *testing.T) {
	// The bitset record has allocs/op = -1 in the baseline; whatever the
	// current run reports cannot regress an unmeasured metric.
	current := append([]record(nil), baseline...)
	current[2].AllocsPerOp = 999
	current[2].BytesPerOp = 1 << 20

	if v := diff(baseline, current, mustTol(t, "strict")); len(v) != 0 {
		t.Errorf("unmeasured baseline metrics must not gate, got %v", v)
	}
}

func TestNewBenchmarksNeverFail(t *testing.T) {
	current := append([]record(nil), baseline...)
	current = append(current, record{Name: "BenchmarkNewKernel-1", Package: "repro/internal/new", NsPerOp: 1, AllocsPerOp: 5})

	if v := diff(baseline, current, mustTol(t, "strict")); len(v) != 0 {
		t.Errorf("added coverage is not a regression, got %v", v)
	}
	got := added(baseline, current)
	if len(got) != 1 || got[0] != "repro/internal/new.BenchmarkNewKernel-1" {
		t.Errorf("added = %v, want the new kernel listed", got)
	}
}

func TestPackageDisambiguatesName(t *testing.T) {
	// Same benchmark name in two packages: only the matching package's
	// record may satisfy the baseline entry.
	base := []record{{Name: "BenchmarkKernel-1", Package: "repro/a", AllocsPerOp: 1, NsPerOp: 10, BytesPerOp: 8}}
	current := []record{{Name: "BenchmarkKernel-1", Package: "repro/b", AllocsPerOp: 1, NsPerOp: 10, BytesPerOp: 8}}
	v := diff(base, current, mustTol(t, "smoke"))
	if len(v) != 1 || !strings.Contains(v[0], "missing") {
		t.Errorf("same name in a different package must not satisfy the baseline, got %v", v)
	}
}

func TestModeTolerancesRejectsUnknownMode(t *testing.T) {
	if _, err := modeTolerances("lenient", 0.35, 0.15); err == nil {
		t.Error("unknown mode must be rejected")
	}
}
