package encodingapi_test

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/encodingapi"
	"repro/internal/server"
)

// startService spins up a real service instance behind httptest and
// returns a client pointed at it.
func startService(t *testing.T, cfg server.Config) *encodingapi.Client {
	t.Helper()
	s := server.New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return encodingapi.NewClient(ts.URL)
}

const feasibleConstraints = "face a b\nface b c\n"

func TestClientEncodeRoundTrip(t *testing.T) {
	c := startService(t, server.Config{})
	res, err := c.Encode(context.Background(), encodingapi.EncodeRequest{
		Constraints: feasibleConstraints,
	})
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	if !res.Feasible || res.Bits <= 0 || len(res.Codes) == 0 {
		t.Fatalf("unexpected result: %+v", res)
	}
	// Every code must be a binary word of the reported width.
	for sym, code := range res.Codes {
		if len(code) != res.Bits || strings.Trim(code, "01") != "" {
			t.Fatalf("symbol %q: bad code %q for %d bits", sym, code, res.Bits)
		}
	}
}

func TestClientRemoteInfeasibleUnwraps(t *testing.T) {
	c := startService(t, server.Config{})
	// dom a > b and dom b > a cannot both hold.
	_, err := c.Encode(context.Background(), encodingapi.EncodeRequest{
		Constraints: "dom a > b\ndom b > a\n",
	})
	if err == nil {
		t.Fatal("expected infeasible error")
	}
	var re *encodingapi.RemoteError
	if !errors.As(err, &re) || re.Status != http.StatusUnprocessableEntity {
		t.Fatalf("expected 422 RemoteError, got %v", err)
	}
	// The remote error must behave like the in-process one.
	if !errors.Is(err, encodingapi.ErrInfeasible) {
		t.Fatalf("errors.Is(err, ErrInfeasible) = false for %v", err)
	}
	ie, ok := encodingapi.AsInfeasible(err)
	if !ok {
		t.Fatalf("AsInfeasible failed for %v", err)
	}
	if ie.Conflict == nil || len(ie.Conflict.Dominances) == 0 {
		t.Fatalf("expected reconstructed conflict set, got %+v", ie)
	}
}

func TestClientBatchDedupesAndReportsPerItem(t *testing.T) {
	c := startService(t, server.Config{})
	items := []encodingapi.EncodeRequest{
		{Constraints: feasibleConstraints},
		{Constraints: "dom a > b\ndom b > a\n"}, // infeasible
		{Constraints: feasibleConstraints},      // duplicate of item 0
	}
	res, err := c.EncodeBatch(context.Background(), encodingapi.BatchRequest{Items: items})
	if err != nil {
		t.Fatalf("EncodeBatch: %v", err)
	}
	if len(res.Items) != 3 {
		t.Fatalf("expected 3 item results, got %d", len(res.Items))
	}
	if res.UniqueItems != 2 || res.Deduped != 1 {
		t.Fatalf("expected 2 unique / 1 deduped, got %d / %d", res.UniqueItems, res.Deduped)
	}
	if err := res.Items[0].Err(); err != nil {
		t.Fatalf("item 0: %v", err)
	}
	if err := res.Items[1].Err(); !errors.Is(err, encodingapi.ErrInfeasible) {
		t.Fatalf("item 1: expected infeasible, got %v", err)
	}
	if res.Items[2].Result == nil || res.Items[0].Result == nil ||
		res.Items[2].Result.Text != res.Items[0].Result.Text {
		t.Fatal("duplicate item should carry the same encoding as its leader")
	}
}

func TestClientJobLifecycle(t *testing.T) {
	c := startService(t, server.Config{})
	// The Jobs listing below requires a credential (anonymous jobs are
	// reachable only by id).
	c.APIKey = "lifecycle-tenant"
	ctx := context.Background()

	job, err := c.Submit(ctx, encodingapi.JobRequest{
		Encode: &encodingapi.EncodeRequest{Constraints: feasibleConstraints},
	})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if job.ID == "" || job.State.Terminal() {
		t.Fatalf("expected queued job with id, got %+v", job)
	}

	done, err := c.Wait(ctx, job.ID)
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if done.State != encodingapi.JobDone {
		t.Fatalf("expected done, got %s (err %v)", done.State, done.Err())
	}
	if done.Result == nil || !done.Result.Feasible {
		t.Fatalf("expected feasible result, got %+v", done.Result)
	}

	// The async answer must match the synchronous one.
	sync, err := c.Encode(ctx, encodingapi.EncodeRequest{Constraints: feasibleConstraints})
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	if done.Result.Text != sync.Text {
		t.Fatalf("async text %q != sync text %q", done.Result.Text, sync.Text)
	}

	// Poll and Jobs both see the terminal job.
	polled, err := c.Poll(ctx, job.ID)
	if err != nil || polled.State != encodingapi.JobDone {
		t.Fatalf("Poll: %+v, %v", polled, err)
	}
	list, err := c.Jobs(ctx)
	if err != nil || len(list) != 1 || list[0].ID != job.ID {
		t.Fatalf("Jobs: %+v, %v", list, err)
	}

	// Cancel on a terminal job is an idempotent no-op.
	after, err := c.Cancel(ctx, job.ID)
	if err != nil || after.State != encodingapi.JobDone {
		t.Fatalf("Cancel after done: %+v, %v", after, err)
	}
}

func TestClientJobNotFoundAndTenantIsolation(t *testing.T) {
	c := startService(t, server.Config{})
	ctx := context.Background()

	if _, err := c.Poll(ctx, "j-doesnotexist"); !isStatus(err, http.StatusNotFound) {
		t.Fatalf("expected 404 for unknown id, got %v", err)
	}

	c.APIKey = "tenant-a"
	job, err := c.Submit(ctx, encodingapi.JobRequest{
		Encode: &encodingapi.EncodeRequest{Constraints: feasibleConstraints},
	})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	other := *c
	other.APIKey = "tenant-b"
	if _, err := other.Poll(ctx, job.ID); !isStatus(err, http.StatusNotFound) {
		t.Fatalf("expected 404 across tenants, got %v", err)
	}
}

func isStatus(err error, status int) bool {
	var re *encodingapi.RemoteError
	return errors.As(err, &re) && re.Status == status
}

// TestEndToEndBatchAsyncSmoke is the `make test-server` e2e check: one
// real service instance driven through the public client across the
// whole v1 surface — batch with duplicates (one solve per canonical
// problem, asserted via /v1/stats), an async job whose result matches
// the synchronous bytes, and a long-poll that resolves it.
func TestEndToEndBatchAsyncSmoke(t *testing.T) {
	s := server.New(server.Config{CacheEntries: -1})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	c := encodingapi.NewClient(ts.URL)
	ctx := context.Background()

	// Batch: 5 items, 2 canonical problems → exactly 2 solves.
	const otherConstraints = "face p q\nface q r\n"
	batch, err := c.EncodeBatch(ctx, encodingapi.BatchRequest{Items: []encodingapi.EncodeRequest{
		{Constraints: feasibleConstraints},
		{Constraints: otherConstraints},
		{Constraints: feasibleConstraints},
		{Constraints: otherConstraints},
		{Constraints: feasibleConstraints},
	}})
	if err != nil {
		t.Fatalf("EncodeBatch: %v", err)
	}
	if batch.UniqueItems != 2 || batch.Deduped != 3 {
		t.Fatalf("unique = %d, deduped = %d; want 2, 3", batch.UniqueItems, batch.Deduped)
	}
	for i, it := range batch.Items {
		if err := it.Err(); err != nil {
			t.Fatalf("item %d: %v", i, err)
		}
	}
	if st := s.Stats(); st.Solves != 2 {
		t.Fatalf("solves = %d, want exactly 2 (one per canonical hash)", st.Solves)
	}

	// Async: submit → queued/202 → long-poll → done, bytes match sync.
	sync, err := c.Encode(ctx, encodingapi.EncodeRequest{Constraints: feasibleConstraints})
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	job, err := c.Submit(ctx, encodingapi.JobRequest{
		Encode: &encodingapi.EncodeRequest{Constraints: feasibleConstraints},
	})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	done, err := c.Wait(ctx, job.ID)
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if done.State != encodingapi.JobDone || done.Result == nil {
		t.Fatalf("job: %+v (err %v)", done, done.Err())
	}
	if done.Result.Text != sync.Text {
		t.Fatalf("async text %q != sync text %q", done.Result.Text, sync.Text)
	}

	// The stats surface reflects the whole session.
	st := s.Stats()
	if st.BatchRequests != 1 || st.BatchItems != 5 || st.BatchDeduped != 3 ||
		st.JobsSubmitted != 1 || st.JobsDone != 1 {
		t.Fatalf("stats: %+v", st)
	}
}
