package encodingapi_test

import (
	"context"
	"errors"
	"testing"

	"repro/encodingapi"
	"repro/internal/core"
	"repro/internal/heuristic"
)

// TestFacadeMatchesLibrary proves the facade is a pure re-export: results
// through encodingapi are byte-identical to the internal paths.
func TestFacadeMatchesLibrary(t *testing.T) {
	const text = "face a b\nface b c\ndom a > d\n"
	cs := encodingapi.MustParse(text)

	if !encodingapi.Feasible(cs) {
		t.Fatalf("expected feasible")
	}

	res, err := encodingapi.ExactEncode(context.Background(), cs, encodingapi.ExactOptions{})
	if err != nil {
		t.Fatalf("ExactEncode: %v", err)
	}
	want, err := core.ExactEncodeCtx(context.Background(), encodingapi.MustParse(text), core.ExactOptions{})
	if err != nil {
		t.Fatalf("core.ExactEncodeCtx: %v", err)
	}
	if res.Encoding.String() != want.Encoding.String() {
		t.Fatalf("facade encoding differs from library path:\n%s\nvs\n%s", res.Encoding, want.Encoding)
	}
	if v := encodingapi.Verify(cs, res.Encoding); len(v) != 0 {
		t.Fatalf("verification failed: %v", v)
	}

	h, err := encodingapi.HeuristicEncode(context.Background(), cs, encodingapi.HeuristicOptions{Metric: encodingapi.Cubes})
	if err != nil {
		t.Fatalf("HeuristicEncode: %v", err)
	}
	hw, err := heuristic.EncodeCtx(context.Background(), encodingapi.MustParse(text), heuristic.Options{Metric: encodingapi.Cubes})
	if err != nil {
		t.Fatalf("heuristic.EncodeCtx: %v", err)
	}
	if h.Encoding.String() != hw.Encoding.String() {
		t.Fatalf("facade heuristic differs from library path")
	}
}

func TestFacadeInfeasible(t *testing.T) {
	// Four symbols forced pairwise-adjacent by faces cannot all be
	// mutually adjacent on a hypercube with uniqueness: use a known
	// infeasible mix instead — a dominance cycle.
	cs := encodingapi.NewSet(nil)
	cs.AddDominance("a", "b")
	cs.AddDominance("b", "a")
	if encodingapi.Feasible(cs) {
		t.Fatalf("dominance cycle reported feasible")
	}
	_, err := encodingapi.ExactEncode(context.Background(), cs, encodingapi.ExactOptions{})
	if !errors.Is(err, encodingapi.ErrInfeasible) {
		t.Fatalf("want ErrInfeasible, got %v", err)
	}
}

func TestFacadeHashAndMetrics(t *testing.T) {
	a := encodingapi.HashSet(encodingapi.MustParse("face a b\n"))
	b := encodingapi.HashSet(encodingapi.MustParse("face  a , b\n"))
	if a != b || a.IsZero() {
		t.Fatalf("hash not canonical over formatting: %v vs %v", a, b)
	}
	for name, want := range map[string]encodingapi.Metric{
		"violations": encodingapi.Violations,
		"cubes":      encodingapi.Cubes,
		"literals":   encodingapi.Literals,
	} {
		got, ok := encodingapi.ParseMetric(name)
		if !ok || got != want {
			t.Fatalf("ParseMetric(%q) = %v, %v", name, got, ok)
		}
	}
	if _, ok := encodingapi.ParseMetric("bogus"); ok {
		t.Fatalf("ParseMetric accepted bogus metric")
	}
}

func TestFacadeTypedInfeasible(t *testing.T) {
	// A dominance cycle buried among harmless constraints: the typed error
	// must isolate the two-constraint cycle as the minimal conflict.
	cs := encodingapi.MustParse(`
		symbols a b c d e
		face c d
		face d e
		dom a > b
		dom b > a
	`)
	_, err := encodingapi.ExactEncode(context.Background(), cs, encodingapi.ExactOptions{})
	ie, ok := encodingapi.AsInfeasible(err)
	if !ok {
		t.Fatalf("want a typed *InfeasibleError, got %v", err)
	}
	if !errors.Is(err, encodingapi.ErrInfeasible) {
		t.Fatalf("typed error must still match ErrInfeasible")
	}
	if ie.Conflict == nil {
		t.Fatalf("small instance must carry a minimized conflict subset")
	}
	if encodingapi.Feasible(ie.Conflict) {
		t.Fatalf("reported conflict subset is feasible:\n%s", ie.Conflict)
	}
	if got := len(ie.Conflict.Dominances); got != 2 || len(ie.Conflict.Faces) != 0 {
		t.Fatalf("minimal conflict should be exactly the dominance cycle, got:\n%s", ie.Conflict)
	}
}
