// Package encodingapi is the public facade of the encoding-constraint
// framework: it re-exports the types and entry points of the internal
// constraint, core, heuristic and cost packages so external importers (and
// the request server in internal/server) depend on one stable surface
// instead of the internal/ layout.
//
// The three problems of the paper map onto three entry points:
//
//   - P-1, feasibility: CheckFeasible / Feasible decide in polynomial time
//     whether a mixed input/output constraint set admits any encoding
//     (Theorem 6.1).
//   - P-2, exact minimum-length encoding: ExactEncode (and
//     ExactEncodeExtended for the Section-8 distance-2/non-face
//     extensions, SolveWithChains for chains) runs the Figure-7 pipeline —
//     initial dichotomies, maximal raising, prime generation, exact unate
//     covering.
//   - P-3, bounded-length encoding: HeuristicEncode runs the Section-7.1
//     split/merge/select heuristic under a chosen cost metric.
//
// All solver entry points here are context-first — cancellation and
// deadlines are part of the canonical signatures, matching the *Ctx forms
// of the internal packages — and deterministic under parallelism: for any
// Parallelism.Workers value they return identical results.
//
// A minimal use:
//
//	cs, err := encodingapi.ParseString("face a b\nface b c\ndom a > c\n")
//	if err != nil { ... }
//	res, err := encodingapi.ExactEncode(context.Background(), cs, encodingapi.ExactOptions{})
//	if err != nil { ... }
//	fmt.Print(res.Encoding) // "a = 01\n..." etc.
package encodingapi

import (
	"context"
	"errors"
	"io"

	"repro/internal/constraint"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/cover"
	"repro/internal/decomp"
	"repro/internal/heuristic"
	"repro/internal/par"
	"repro/internal/prime"
	"repro/internal/sym"
	"repro/internal/trace"
)

// Re-exported types. These are aliases, not copies: values flow freely
// between this package and code (tests, benchmarks) using the internal
// packages directly.
type (
	// Table is the symbol table: a bijection between symbol names and
	// dense indices shared by constraint sets and encodings.
	Table = sym.Table

	// Set is a collection of encoding constraints over a shared symbol
	// table. Build one with NewSet + Add* methods, or parse the textual
	// constraint language with Parse/ParseString.
	Set = constraint.Set

	// Face is a face-embedding (input) constraint.
	Face = constraint.Face
	// Dominance is the output constraint code(Big) ⊇ code(Small).
	Dominance = constraint.Dominance
	// Disjunctive is the output constraint parent = OR of children.
	Disjunctive = constraint.Disjunctive
	// ExtDisjunctive is the Section-6.2 disjunction-of-conjunctions form.
	ExtDisjunctive = constraint.ExtDisjunctive
	// Distance2 requires two codes to differ in at least two bits.
	Distance2 = constraint.Distance2
	// NonFace requires an outside code inside the members' minimal face.
	NonFace = constraint.NonFace
	// Chain requires consecutive symbols to take consecutive codes.
	Chain = constraint.Chain

	// Encoding assigns a binary code to every symbol.
	Encoding = core.Encoding
	// Violation describes one failed constraint found by Verify.
	Violation = core.Violation
	// Feasibility is the P-1 outcome with its intermediate artifacts.
	Feasibility = core.Feasibility
	// ExactResult is the P-2 output: the encoding plus pipeline stages.
	ExactResult = core.ExactResult
	// ExactOptions tunes the exact encoder.
	ExactOptions = core.ExactOptions
	// PrimeOptions tunes maximal-compatible generation inside
	// ExactOptions.
	PrimeOptions = prime.Options
	// Backend selects the exact encoder's covering engine inside
	// ExactOptions: branch-and-bound (default) or the CNF/SAT backend.
	Backend = core.Backend
	// CoverOptions tunes the covering solvers inside ExactOptions.
	CoverOptions = cover.Options

	// HeuristicOptions tunes the P-3 bounded-length encoder.
	HeuristicOptions = heuristic.Options
	// HeuristicResult is the P-3 output: encoding plus evaluated cost.
	HeuristicResult = heuristic.Result

	// Metric selects the P-3 objective.
	Metric = cost.Metric
	// Cost bundles the evaluated violation/cube/literal counts.
	Cost = cost.Result

	// Parallelism is the Workers/TimeLimit pair embedded in every
	// Options type.
	Parallelism = par.Parallelism

	// Hash128 is the canonical 128-bit content hash of a constraint set.
	Hash128 = core.Hash128

	// Trace is the stage-span report of one solve: what the ExactResult
	// and HeuristicResult Trace fields carry when the solve ran under a
	// traced context (see StartTrace), what the encode CLIs print under
	// -trace, and what the server returns from GET /v1/trace/{id}.
	Trace = trace.Trace
	// TraceSpan is one recorded stage of a Trace.
	TraceSpan = trace.SpanRecord
	// TraceAttr is one integer annotation on a TraceSpan.
	TraceAttr = trace.Attr
	// TraceRecorder collects spans during a solve; attach one to a context
	// with StartTrace.
	TraceRecorder = trace.Recorder
)

// Exact-encoder covering backends.
const (
	// BackendBranchBound is the hand-rolled covering branch-and-bound
	// (the default).
	BackendBranchBound = core.BackendBranchBound
	// BackendSAT compiles the covering problem to CNF and solves it with
	// the embedded DPLL solver (internal/sat). Agrees with branch-and-bound
	// on feasibility, code length and optimality; the concrete codes may
	// differ when several minimum covers exist.
	BackendSAT = core.BackendSAT
)

// P-3 cost metrics.
const (
	// Violations counts unsatisfied face constraints.
	Violations = cost.Violations
	// Cubes counts product terms of the encoded constraints.
	Cubes = cost.Cubes
	// Literals counts SOP literals of the encoded constraints.
	Literals = cost.Literals
)

// ErrInfeasible is returned by ExactEncode and ExactEncodeExtended when the
// constraints admit no encoding.
var ErrInfeasible = core.ErrInfeasible

// InfeasibleError is the typed infeasibility report the exact solvers
// attach to ErrInfeasible: Uncovered lists the seed dichotomies no valid
// column covers, and Conflict — when the instance is small enough to
// minimize — a subset of the input constraints that is already infeasible
// on its own. It matches errors.Is(err, ErrInfeasible).
type InfeasibleError = core.InfeasibleError

// AsInfeasible unwraps err's typed infeasibility report, if it carries
// one. The boolean form spares callers the errors.As boilerplate:
//
//	if ie, ok := encodingapi.AsInfeasible(err); ok {
//		fmt.Println(ie.Conflict) // offending constraint subset, may be nil
//	}
func AsInfeasible(err error) (*InfeasibleError, bool) {
	var ie *InfeasibleError
	if errors.As(err, &ie) {
		return ie, true
	}
	return nil, false
}

// NewTable returns an empty symbol table.
func NewTable() *Table { return sym.NewTable() }

// NewSet returns an empty constraint set over the given symbol table; a nil
// table is replaced by a fresh one.
func NewSet(t *Table) *Set { return constraint.NewSet(t) }

// Parse reads a constraint set from the textual constraint language (see
// the constraint package documentation for the grammar).
func Parse(r io.Reader) (*Set, error) { return constraint.Parse(r) }

// ParseString is Parse over a string.
func ParseString(text string) (*Set, error) { return constraint.ParseString(text) }

// MustParse parses text and panics on error; intended for tests and
// examples.
func MustParse(text string) *Set { return constraint.MustParse(text) }

// ParseMetric resolves a metric name ("violations", "cubes", "literals") to
// its Metric, reporting whether the name is known.
func ParseMetric(name string) (Metric, bool) {
	switch name {
	case "violations":
		return Violations, true
	case "cubes":
		return Cubes, true
	case "literals":
		return Literals, true
	}
	return 0, false
}

// ParseBackend resolves an exact-encoder backend name ("bb", alias
// "branchbound", or "sat"; empty means the default), reporting whether the
// name is known.
func ParseBackend(name string) (Backend, bool) { return core.ParseBackend(name) }

// StartTrace attaches a fresh solve-trace recorder to ctx and returns both.
// Solver entry points called with the returned context record per-stage
// spans (prime generation, covering search, heuristic restarts, …) into the
// recorder and attach a snapshot to their results' Trace field; without a
// recorder the instrumentation costs nothing. Inspect the report with
// Trace.Table (the CLIs' stage-time rendering) or walk Trace.Spans.
func StartTrace(ctx context.Context) (context.Context, *TraceRecorder) {
	return trace.Start(ctx)
}

// CheckFeasible decides P-1: whether the input and output constraints admit
// any encoding, in time polynomial in the number of symbols and
// constraints.
func CheckFeasible(cs *Set) Feasibility { return core.CheckFeasible(cs) }

// CheckFeasibleCtx is CheckFeasible under a context, recording a stage span
// when the context is traced (see StartTrace); the verdict is identical.
func CheckFeasibleCtx(ctx context.Context, cs *Set) Feasibility {
	return core.CheckFeasibleCtx(ctx, cs)
}

// Feasible is CheckFeasible reduced to its verdict.
func Feasible(cs *Set) bool { return core.CheckFeasible(cs).Feasible }

// ExactEncode solves P-2: minimum-length codes satisfying all input and
// output constraints, or ErrInfeasible. The context cancels the exponential
// stages cooperatively; see core.ExactEncodeCtx for the exact contract.
// With opts.Decompose set, the set is split into the connected components
// of its symbol graph and the components solve independently (see
// internal/decomp); any infeasibility is reported in global terms.
func ExactEncode(ctx context.Context, cs *Set, opts ExactOptions) (*ExactResult, error) {
	if opts.Decompose {
		return decomp.ExactEncodeCtx(ctx, cs, opts)
	}
	return core.ExactEncodeCtx(ctx, cs, opts)
}

// ExactEncodeExtended solves P-2 in the presence of the Section-8
// distance-2 and non-face extension constraints. opts.Decompose routes
// through connected-component decomposition exactly as in ExactEncode
// (non-face and chain sets fall back to the monolithic path internally).
func ExactEncodeExtended(ctx context.Context, cs *Set, opts ExactOptions) (*ExactResult, error) {
	if opts.Decompose {
		return decomp.ExactEncodeCtx(ctx, cs, opts)
	}
	return core.ExactEncodeExtendedCtx(ctx, cs, opts)
}

// DecompCount reports the number of connected components of cs's symbol
// graph (1 for sets the decomposer cannot split: chains or non-faces
// present). Useful for reporting and capacity planning.
func DecompCount(cs *Set) int { return decomp.Count(cs) }

// SolveWithChains searches directly for codes satisfying a set that
// includes chain constraints; exponential, limited to small symbol counts
// (the paper's Section-8.4 open problem).
func SolveWithChains(cs *Set, maxBits int) (*Encoding, error) {
	return core.SolveWithChains(cs, maxBits)
}

// HeuristicEncode solves P-3: a bounded-length encoding minimizing the
// chosen cost metric via the split/merge/select heuristic. Output
// constraints are ignored (the paper presents the algorithm for input
// constraints).
func HeuristicEncode(ctx context.Context, cs *Set, opts HeuristicOptions) (*HeuristicResult, error) {
	return heuristic.EncodeCtx(ctx, cs, opts)
}

// Verify independently checks an encoding against a constraint set and
// returns every violation found (nil means fully satisfied, including code
// uniqueness).
func Verify(cs *Set, e *Encoding) []Violation { return core.Verify(cs, e) }

// HashSet returns the canonical 128-bit content hash of a constraint set;
// see core.HashSet for what "canonical" covers. Constraint order and
// symbol-interning order are significant; use CanonicalHashSet to key
// caches that must treat reordered-but-equal sets as one problem.
func HashSet(cs *Set) Hash128 { return core.HashSet(cs) }

// CanonicalHashSet is HashSet made invariant under constraint reordering
// and symbol-interning order; see core.CanonicalHashSet for the exact
// equivalence it quotients by.
func CanonicalHashSet(cs *Set) Hash128 { return core.CanonicalHashSet(cs) }
