// Client-side surface of the encoding service: a typed HTTP client for
// the v1 API served by internal/server (cmd/served), covering the
// synchronous endpoints, batch submission and the async job lifecycle.
// Service errors decode into RemoteError, which unwraps infeasibility
// back into the same typed errors the in-process entry points return —
// errors.Is(err, ErrInfeasible) and AsInfeasible work identically against
// a remote server.
package encodingapi

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// Client calls a served instance. The zero value is not usable; set
// BaseURL (e.g. "http://localhost:8080"). Safe for concurrent use.
type Client struct {
	// BaseURL is the service root, without a trailing slash.
	BaseURL string
	// HTTPClient performs the requests; nil means http.DefaultClient.
	// Long-poll calls (Wait) need a client timeout above the poll window
	// or none at all.
	HTTPClient *http.Client
	// APIKey, when non-empty, is sent as the Bearer token identifying
	// the tenant for the service's admission control.
	APIKey string
}

// NewClient returns a Client for the service at baseURL.
func NewClient(baseURL string) *Client {
	return &Client{BaseURL: strings.TrimRight(baseURL, "/")}
}

// EncodeRequest is the body of POST /v1/encode (and of one batch item,
// where TimeoutMS must stay 0 — the batch carries the budget).
type EncodeRequest struct {
	Constraints string `json:"constraints"`
	// Mode is "feasible", "exact" (default) or "heuristic".
	Mode       string `json:"mode,omitempty"`
	Bits       int    `json:"bits,omitempty"`
	Metric     string `json:"metric,omitempty"`
	PrimeLimit int    `json:"prime_limit,omitempty"`
	TimeoutMS  int    `json:"timeout_ms,omitempty"`
	Workers    int    `json:"workers,omitempty"`
	// Decompose requests connected-component decomposition (exact mode).
	Decompose bool `json:"decompose,omitempty"`
	// Backend selects the exact-mode covering engine: "bb" or "sat";
	// empty means the server default.
	Backend string `json:"backend,omitempty"`
}

// PipelineRequest is the body of POST /v1/pipeline.
type PipelineRequest struct {
	Kiss           string `json:"kiss"`
	Strategy       string `json:"strategy,omitempty"`
	MinimizeStates bool   `json:"minimize_states,omitempty"`
	TimeoutMS      int    `json:"timeout_ms,omitempty"`
	Workers        int    `json:"workers,omitempty"`
}

// CostBreakdown mirrors the heuristic mode's evaluated metrics.
type CostBreakdown struct {
	Violations int `json:"violations"`
	Cubes      int `json:"cubes"`
	Literals   int `json:"literals"`
}

// EncodeResult is a successful solve answer: the mode-independent result
// plus the service's delivery metadata. Pipeline reports stay raw JSON —
// their schema belongs to internal/pipeline and is documented in
// docs/openapi.yaml.
type EncodeResult struct {
	Mode      string            `json:"mode"`
	Feasible  bool              `json:"feasible"`
	Bits      int               `json:"bits"`
	Codes     map[string]string `json:"codes,omitempty"`
	Text      string            `json:"text,omitempty"`
	Optimal   bool              `json:"optimal,omitempty"`
	Cost      *CostBreakdown    `json:"cost,omitempty"`
	Uncovered []string          `json:"uncovered,omitempty"`
	Pipeline  json.RawMessage   `json:"pipeline,omitempty"`

	Cached    bool    `json:"cached"`
	Coalesced bool    `json:"coalesced"`
	ElapsedMS float64 `json:"elapsed_ms"`
	TraceID   uint64  `json:"trace_id,omitempty"`
}

// ErrorBody is the service's versioned error shape, shared by every v1
// endpoint: {"error":{"code","message","retry_after_s","conflict"}}.
type ErrorBody struct {
	Code        string   `json:"code"`
	Message     string   `json:"message"`
	RetryAfterS int64    `json:"retry_after_s,omitempty"`
	Conflict    []string `json:"conflict,omitempty"`
}

// RemoteError is a non-2xx service answer. It preserves the full error
// body, and Unwrap reconstructs typed infeasibility: errors.Is(err,
// ErrInfeasible) holds and AsInfeasible returns an InfeasibleError whose
// Conflict is re-parsed from the body's conflict lines, exactly as the
// in-process solvers would have reported it.
type RemoteError struct {
	// Status is the HTTP status code.
	Status int
	// Body is the decoded error body; for a malformed error response
	// only Message is set (to the raw body text).
	Body ErrorBody
}

func (e *RemoteError) Error() string {
	if e.Body.Code != "" {
		return fmt.Sprintf("server: %s (%d): %s", e.Body.Code, e.Status, e.Body.Message)
	}
	return fmt.Sprintf("server: status %d: %s", e.Status, e.Body.Message)
}

// Unwrap maps the error code back to the library's sentinel errors.
func (e *RemoteError) Unwrap() error {
	if e.Body.Code != "infeasible" {
		return nil
	}
	ie := &InfeasibleError{}
	if len(e.Body.Conflict) > 0 {
		if cs, err := ParseString(strings.Join(e.Body.Conflict, "\n") + "\n"); err == nil {
			ie.Conflict = cs
		}
	}
	return ie
}

// BatchRequest is the body of POST /v1/encode/batch: N constraint-solve
// items under one shared budget.
type BatchRequest struct {
	Items     []EncodeRequest `json:"items"`
	TimeoutMS int             `json:"timeout_ms,omitempty"`
}

// BatchItemResult is one item's outcome; exactly one of Result and Error
// is set.
type BatchItemResult struct {
	Index  int           `json:"index"`
	Status int           `json:"status"`
	Result *EncodeResult `json:"result,omitempty"`
	Error  *ErrorBody    `json:"error,omitempty"`
}

// Err returns the item's failure as a *RemoteError; nil for a successful
// item. An infeasible item's error unwraps to ErrInfeasible like any
// other service error.
func (it *BatchItemResult) Err() error {
	if it.Error == nil {
		return nil
	}
	return &RemoteError{Status: it.Status, Body: *it.Error}
}

// BatchResult is the batch answer. Per-item failures live inside Items;
// the batch call itself only fails when the whole request was rejected.
type BatchResult struct {
	Items []BatchItemResult `json:"items"`
	// UniqueItems counts distinct canonical problems dispatched; Deduped
	// counts items answered by an identical sibling in the same batch.
	UniqueItems int     `json:"unique_items"`
	Deduped     int     `json:"deduped"`
	TraceID     uint64  `json:"trace_id,omitempty"`
	ElapsedMS   float64 `json:"elapsed_ms"`
}

// JobState is a job's lifecycle state as rendered by the service.
type JobState string

// The job lifecycle: queued → running → done/failed/cancelled. A job
// answered from the result cache may go queued → done without running.
const (
	JobQueued    JobState = "queued"
	JobRunning   JobState = "running"
	JobDone      JobState = "done"
	JobFailed    JobState = "failed"
	JobCancelled JobState = "cancelled"
)

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool {
	return s == JobDone || s == JobFailed || s == JobCancelled
}

// JobRequest is the body of POST /v1/jobs: exactly one of Encode or
// Pipeline names the workload. The workload's TimeoutMS bounds the solve
// itself (clamped by the server), not any HTTP response — that is the
// point of submitting asynchronously.
type JobRequest struct {
	Encode   *EncodeRequest   `json:"encode,omitempty"`
	Pipeline *PipelineRequest `json:"pipeline,omitempty"`
}

// Job is one job's rendered state. Result is set only in state "done";
// Error only in "failed" and "cancelled".
type Job struct {
	ID       string        `json:"id"`
	Kind     string        `json:"kind"`
	State    JobState      `json:"state"`
	Created  time.Time     `json:"created"`
	Started  *time.Time    `json:"started,omitempty"`
	Finished *time.Time    `json:"finished,omitempty"`
	Result   *EncodeResult `json:"result,omitempty"`
	Error    *ErrorBody    `json:"error,omitempty"`
}

// Err returns a terminal failure as a *RemoteError; nil while the job is
// active or when it succeeded.
func (j *Job) Err() error {
	if j.Error == nil {
		return nil
	}
	status := http.StatusInternalServerError
	switch j.State {
	case JobCancelled:
		status = http.StatusServiceUnavailable
	case JobFailed:
		if j.Error.Code == "timeout" {
			status = http.StatusGatewayTimeout
		}
	}
	return &RemoteError{Status: status, Body: *j.Error}
}

// Encode solves one constraint set synchronously via POST /v1/encode.
func (c *Client) Encode(ctx context.Context, req EncodeRequest) (*EncodeResult, error) {
	var out EncodeResult
	if err := c.do(ctx, http.MethodPost, "/v1/encode", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Pipeline runs the KISS2 synthesis pipeline synchronously via
// POST /v1/pipeline.
func (c *Client) Pipeline(ctx context.Context, req PipelineRequest) (*EncodeResult, error) {
	var out EncodeResult
	if err := c.do(ctx, http.MethodPost, "/v1/pipeline", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// EncodeBatch submits N items via POST /v1/encode/batch. The returned
// error covers batch-level rejection only; inspect each item's Err for
// per-item outcomes.
func (c *Client) EncodeBatch(ctx context.Context, req BatchRequest) (*BatchResult, error) {
	var out BatchResult
	if err := c.do(ctx, http.MethodPost, "/v1/encode/batch", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Submit creates an async job via POST /v1/jobs and returns it in state
// "queued" (the service answers 202).
func (c *Client) Submit(ctx context.Context, req JobRequest) (*Job, error) {
	var out Job
	if err := c.do(ctx, http.MethodPost, "/v1/jobs", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Poll fetches the job's current state via GET /v1/jobs/{id}.
func (c *Client) Poll(ctx context.Context, id string) (*Job, error) {
	var out Job
	if err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id, nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Wait long-polls GET /v1/jobs/{id}?wait=... until the job is terminal
// or ctx is done. It never fails on a terminal job state — a failed job
// is returned as a Job whose Err reports the failure.
func (c *Client) Wait(ctx context.Context, id string) (*Job, error) {
	for {
		var out Job
		if err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id+"?wait=30s", nil, &out); err != nil {
			return nil, err
		}
		if out.State.Terminal() {
			return &out, nil
		}
		if err := ctx.Err(); err != nil {
			return &out, err
		}
	}
}

// Cancel requests cancellation via DELETE /v1/jobs/{id} and returns the
// resulting state: "cancelled" for a job caught while queued, "running"
// for one whose solve is still observing the cancellation (Poll or Wait
// for the terminal state), unchanged for an already-terminal job.
func (c *Client) Cancel(ctx context.Context, id string) (*Job, error) {
	var out Job
	if err := c.do(ctx, http.MethodDelete, "/v1/jobs/"+id, nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Jobs lists the calling tenant's retained jobs, newest first. The
// listing requires a credential (set APIKey): the service refuses it for
// anonymous callers, whose jobs are reachable only by id.
func (c *Client) Jobs(ctx context.Context) ([]Job, error) {
	var out struct {
		Jobs []Job `json:"jobs"`
	}
	if err := c.do(ctx, http.MethodGet, "/v1/jobs", nil, &out); err != nil {
		return nil, err
	}
	return out.Jobs, nil
}

// do performs one JSON round trip; non-2xx answers become *RemoteError.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		buf, err := json.Marshal(in)
		if err != nil {
			return fmt.Errorf("encoding request: %w", err)
		}
		body = bytes.NewReader(buf)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if c.APIKey != "" {
		req.Header.Set("Authorization", "Bearer "+c.APIKey)
	}
	hc := c.HTTPClient
	if hc == nil {
		hc = http.DefaultClient
	}
	resp, err := hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode >= 400 {
		var er struct {
			Error ErrorBody `json:"error"`
		}
		if json.Unmarshal(data, &er) != nil || er.Error.Code == "" {
			er.Error.Message = strings.TrimSpace(string(data))
		}
		return &RemoteError{Status: resp.StatusCode, Body: er.Error}
	}
	if out == nil {
		return nil
	}
	if err := json.Unmarshal(data, out); err != nil {
		return fmt.Errorf("decoding response: %w", err)
	}
	return nil
}
