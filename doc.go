// Package repro is a Go reproduction of "A Framework for Satisfying Input
// and Output Encoding Constraints" (Saldanha, Villa, Brayton,
// Sangiovanni-Vincentelli; DAC 1991 / UCB ERL M90/110).
//
// The library solves the paper's three problems over mixed input
// (face-embedding) and output (dominance, disjunctive, extended
// disjunctive) encoding constraints:
//
//	P-1  satisfiability, in polynomial time        core.CheckFeasible
//	P-2  minimum-length exact codes                core.ExactEncode
//	P-3  bounded-length cost minimization          heuristic.Encode
//
// plus the Section-8 extensions (encoding don't-cares, distance-2,
// non-face and chain constraints), the complete state-assignment flow
// (KISS2 → symbolic minimization → constraints → codes → PLA/BLIF), the
// NOVA and simulated-annealing baselines of the paper's evaluation, and
// the experiment harness regenerating every table and figure.
//
// See README.md for a tour, DESIGN.md for the system inventory, and
// EXPERIMENTS.md for paper-vs-measured results. The test files in this
// root package hold cross-package integration tests and one benchmark per
// table and figure of the paper.
package repro
